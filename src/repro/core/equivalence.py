"""Equivalence classes of views and view tuples (Section 5.2).

The paper's concise representation partitions

* the **views** into classes of queries equivalent *as queries* (view V1
  and V5 of the car-loc-part example), so CoreCover only processes one
  representative per class; and
* the **view tuples** into classes with identical tuple-cores (same set
  of covered query subgoals), so the cover search is bounded by the number
  of query subgoals, independent of the number of views.

Both partitions use cheap structural invariants as a pre-filter before the
quadratic pairwise equivalence tests (the paper notes this up-front cost
"paid off later when the number of views was more than 100").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..containment.containment import is_equivalent_to
from ..containment.minimize import minimize
from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery
from ..planner.context import PlannerContext
from ..views.view import View
from .tuple_core import TupleCore

#: Head predicate used to compare view definitions regardless of view name.
_NEUTRAL_HEAD = "__view_cmp__"


def _neutral_definition(view: View) -> ConjunctiveQuery:
    definition = view.definition
    return ConjunctiveQuery(
        Atom(_NEUTRAL_HEAD, definition.head.args), definition.body
    )


def group_equivalent_views(
    views: Iterable[View], context: PlannerContext | None = None
) -> list[list[View]]:
    """Partition views into classes equivalent as queries.

    Two views are compared by their definitions with the head predicate
    neutralized (V1 and V5 have different names but the same definition).
    Definitions are minimized once, bucketed by structural signature, and
    only compared pairwise within a bucket.

    With a :class:`PlannerContext`, both the per-view minimization and the
    pairwise equivalence tests are memoized on structural keys — random
    catalogs routinely contain many structurally identical definitions, so
    most of the quadratic work collapses into cache hits.
    """
    minimize_fn = context.minimize if context is not None else minimize
    equivalent = (
        context.is_equivalent_to if context is not None else is_equivalent_to
    )
    minimized: list[tuple[View, ConjunctiveQuery]] = [
        (view, minimize_fn(_neutral_definition(view))) for view in views
    ]
    buckets: dict[tuple, list[tuple[View, ConjunctiveQuery]]] = {}
    for view, definition in minimized:
        buckets.setdefault(definition.signature(), []).append((view, definition))

    classes: list[list[View]] = []
    for bucket in buckets.values():
        representatives: list[tuple[ConjunctiveQuery, list[View]]] = []
        for view, definition in bucket:
            for rep_definition, members in representatives:
                if equivalent(definition, rep_definition):
                    members.append(view)
                    break
            else:
                representatives.append((definition, [view]))
        classes.extend(members for _, members in representatives)
    return classes


def view_representatives(
    views: Iterable[View], context: PlannerContext | None = None
) -> list[View]:
    """One representative view per equivalence class, in stable order."""
    return [members[0] for members in group_equivalent_views(views, context)]


def group_cores_by_coverage(
    cores: Sequence[TupleCore],
) -> dict[frozenset[int], list[TupleCore]]:
    """Partition tuple-cores by the set of query subgoals they cover.

    All view tuples in one class are interchangeable in a cover, which is
    the paper's advantage (4): the optimizer may later swap a view tuple
    for a classmate (e.g. a smaller materialized relation) and still have
    a rewriting.
    """
    groups: dict[frozenset[int], list[TupleCore]] = {}
    for core in cores:
        groups.setdefault(core.covered, []).append(core)
    return groups


def core_representatives(cores: Sequence[TupleCore]) -> list[TupleCore]:
    """One representative tuple-core per coverage class (nonempty first)."""
    groups = group_cores_by_coverage(cores)
    ordered = sorted(
        groups.items(), key=lambda item: (-len(item[0]), sorted(item[0]))
    )
    return [members[0] for _, members in ordered]
