"""The structure of rewritings: Figure 1 regions and the LMR partial order.

Section 3.2 analyzes the internal relationship of a query's rewritings:
locally-minimal rewritings (LMRs) form a partial order under query
containment; by Lemma 3.1, containment between LMRs also orders their
subgoal counts.  The bottom elements are the containment-minimal
rewritings (CMRs), and Propositions 3.1/3.2 show the CMRs contain a
globally-minimal rewriting (GMR) — though a GMR need not be a CMR (the
``e(X, X)`` example of Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Flag, auto
from typing import Iterable, Sequence

from ..containment.containment import is_properly_contained_in
from ..datalog.query import ConjunctiveQuery
from ..views.rewriting import (
    is_equivalent_rewriting,
    is_locally_minimal,
    is_minimal_as_query,
)
from ..views.view import ViewCatalog


class RewritingRegion(Flag):
    """The Figure 1 classification of a rewriting."""

    NONE = 0
    REWRITING = auto()
    MINIMAL = auto()
    LOCALLY_MINIMAL = auto()
    CONTAINMENT_MINIMAL = auto()
    GLOBALLY_MINIMAL = auto()


@dataclass(frozen=True)
class LmrLattice:
    """The containment partial order over a set of LMRs.

    ``edges`` holds the Hasse diagram: ``(i, j)`` means rewriting ``i``
    properly contains rewriting ``j`` (as queries) with no LMR strictly
    between them — the upper-to-lower edges of Figure 2.
    """

    rewritings: tuple[ConjunctiveQuery, ...]
    edges: tuple[tuple[int, int], ...]
    cmr_indices: tuple[int, ...]
    gmr_indices: tuple[int, ...]

    def cmrs(self) -> tuple[ConjunctiveQuery, ...]:
        """The containment-minimal rewritings (bottom elements)."""
        return tuple(self.rewritings[i] for i in self.cmr_indices)

    def gmrs(self) -> tuple[ConjunctiveQuery, ...]:
        """The rewritings with the fewest subgoals."""
        return tuple(self.rewritings[i] for i in self.gmr_indices)


def build_lmr_lattice(lmrs: Sequence[ConjunctiveQuery]) -> LmrLattice:
    """Compute the Figure 2 partial order for the given LMRs.

    Callers are responsible for passing genuine LMRs of one query (use
    :func:`repro.views.rewriting.is_locally_minimal`).
    """
    n = len(lmrs)
    properly_contains = [
        [
            i != j and is_properly_contained_in(lmrs[j], lmrs[i])
            for j in range(n)
        ]
        for i in range(n)
    ]

    edges: list[tuple[int, int]] = []
    for i in range(n):
        for j in range(n):
            if not properly_contains[i][j]:
                continue
            has_intermediate = any(
                properly_contains[i][k] and properly_contains[k][j]
                for k in range(n)
                if k not in (i, j)
            )
            if not has_intermediate:
                edges.append((i, j))

    cmr_indices = tuple(
        j
        for j in range(n)
        if not any(properly_contains[j][k] for k in range(n))
    )
    min_size = min((len(q.body) for q in lmrs), default=0)
    gmr_indices = tuple(i for i, q in enumerate(lmrs) if len(q.body) == min_size)
    return LmrLattice(tuple(lmrs), tuple(edges), cmr_indices, gmr_indices)


def classify_rewriting(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewCatalog,
    known_lmrs: Iterable[ConjunctiveQuery] = (),
    known_minimum: int | None = None,
) -> RewritingRegion:
    """Place *rewriting* in the Figure 1 regions.

    ``CONTAINMENT_MINIMAL`` and ``GLOBALLY_MINIMAL`` are relative to the
    supplied context: *known_lmrs* (other LMRs to compare against) and
    *known_minimum* (the query's GMR size, e.g. from CoreCover).
    """
    region = RewritingRegion.NONE
    if not is_equivalent_rewriting(rewriting, query, views):
        return region
    region |= RewritingRegion.REWRITING
    if not is_minimal_as_query(rewriting):
        return region
    region |= RewritingRegion.MINIMAL
    if not is_locally_minimal(rewriting, query, views):
        return region
    region |= RewritingRegion.LOCALLY_MINIMAL
    if not any(
        is_properly_contained_in(other, rewriting) for other in known_lmrs
    ):
        region |= RewritingRegion.CONTAINMENT_MINIMAL
    if known_minimum is not None and len(rewriting.body) == known_minimum:
        region |= RewritingRegion.GLOBALLY_MINIMAL
    return region
