"""Tuple-cores: the query subgoals covered by a view tuple (Section 4.1).

Definition 4.1: the tuple-core of a view tuple ``t_v`` for a minimal query
``Q`` is a *maximal* collection ``G`` of query subgoals admitting a
containment mapping ``φ : G → t_v^exp`` such that

1. ``φ`` is one-to-one and is the identity on arguments of ``G`` that
   appear among ``t_v``'s arguments;
2. every distinguished variable of ``Q`` occurring in ``G`` is mapped to a
   distinguished variable of ``t_v^exp`` (hence, by (1), to itself);
3. if a nondistinguished variable ``X`` of ``G`` is mapped to an
   existential variable of ``t_v``'s expansion, then ``G`` contains *all*
   query subgoals using ``X`` (the MiniCon-style closure property).

Consequences used by the implementation (see Lemma 4.1): every variable of
``G`` is mapped either to itself — possible exactly when it occurs among
``t_v``'s arguments — or, injectively, to a fresh existential variable of
the expansion.  A query variable is never mapped onto a *different*
view-tuple argument (that would break the global identity-on-``Var(P)``
property) nor onto a constant of the view body (the canonical-database
construction already aligns such constants with the query's own
constants).

Lemma 4.2 states the maximal ``G`` is unique; the search below therefore
returns the maximum-cardinality consistent ``G``, and the property-based
tests assert uniqueness on random inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery
from ..datalog.substitution import Substitution
from ..datalog.terms import (
    Constant,
    FreshVariableFactory,
    Term,
    Variable,
    is_variable,
)
from .view_tuples import ViewTuple


@dataclass(frozen=True)
class TupleCore:
    """The (unique) tuple-core of a view tuple w.r.t. a minimal query.

    ``covered`` holds the indices of the covered subgoals in the minimal
    query's body; ``mapping`` is a witnessing containment mapping
    (variables of the covered subgoals to terms of the expansion).
    """

    view_tuple: ViewTuple
    covered: frozenset[int]
    mapping: Substitution

    @property
    def is_empty(self) -> bool:
        """Whether the view tuple covers no query subgoal."""
        return not self.covered

    def covered_atoms(self, query: ConjunctiveQuery) -> tuple[Atom, ...]:
        """The covered subgoals of *query*, in body order."""
        return tuple(query.body[i] for i in sorted(self.covered))

    def __str__(self) -> str:
        indices = ", ".join(str(i) for i in sorted(self.covered))
        return f"core({self.view_tuple}) = {{{indices}}}"


class _CoreSearch:
    """Backtracking search for the maximum consistent covered set.

    ``checkpoint`` (when given) is called on every backtracking node —
    the cooperative-cancellation hook for resource budgets.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        view_tuple: ViewTuple,
        checkpoint: Callable[[], None] | None = None,
    ) -> None:
        self.query = query
        self.view_tuple = view_tuple
        self.checkpoint = checkpoint
        factory = FreshVariableFactory(
            v.name for v in query.variables() | _atom_variables(view_tuple.atom)
        )
        self.exp_atoms, self.fresh_existentials = view_tuple.expansion(factory)
        self.tuple_args = view_tuple.argument_terms()
        self.distinguished = query.distinguished_variables()
        # Per query subgoal: all (exp atom, partial binding) candidates.
        self.candidates = [
            self._atom_candidates(atom) for atom in query.body
        ]
        # Query atoms indexed by variable, for the property-(3) closure.
        self.atoms_of_var: dict[Variable, set[int]] = {}
        for index, atom in enumerate(query.body):
            for variable in atom.variable_set():
                self.atoms_of_var.setdefault(variable, set()).add(index)

    # -- candidate generation --------------------------------------------
    def _atom_candidates(self, atom: Atom) -> list[dict[Variable, Variable]]:
        """All ways to map *atom* into the expansion, as existential bindings.

        Each candidate is the set of ``query var -> fresh existential``
        bindings it requires; identity mappings are implicit.  An empty
        dict means the atom maps by pure identity.
        """
        results: list[dict[Variable, Variable]] = []
        for exp_atom in self.exp_atoms:
            binding = self._match(atom, exp_atom)
            if binding is not None and binding not in results:
                results.append(binding)
        return results

    def _match(
        self, atom: Atom, exp_atom: Atom
    ) -> Optional[dict[Variable, Variable]]:
        if atom.predicate != exp_atom.predicate or atom.arity != exp_atom.arity:
            return None
        binding: dict[Variable, Variable] = {}
        for arg, target in zip(atom.args, exp_atom.args):
            if isinstance(arg, Constant):
                if arg != target:
                    return None
                continue
            # arg is a query variable.
            if target == arg:
                # Identity mapping; legal only when arg occurs among the
                # view tuple's arguments (then it is distinguished in the
                # expansion).  Since target equals arg and arg is a query
                # variable, arg necessarily came from the tuple's args.
                if arg in binding:
                    return None  # previously needed an existential image
                continue
            if target in self.fresh_existentials:
                if arg in self.distinguished:
                    return None  # property (2)
                if arg in self.tuple_args:
                    return None  # property (1): identity is forced
                bound = binding.get(arg)
                if bound is None:
                    binding[arg] = target
                elif bound != target:
                    return None
                continue
            # target is a different query term or a view-body constant —
            # both are rejected (see module docstring).
            return None
        return binding

    # -- search ----------------------------------------------------------------
    def run(self) -> TupleCore:
        """Find the maximum covered set and return the tuple-core."""
        n = len(self.query.body)
        best: dict[str, object] = {"covered": frozenset(), "binding": {}}

        def consistent(
            binding: dict[Variable, Variable], addition: dict[Variable, Variable]
        ) -> Optional[dict[Variable, Variable]]:
            merged = dict(binding)
            used = set(binding.values())
            for variable, target in addition.items():
                bound = merged.get(variable)
                if bound is None:
                    if target in used:
                        return None  # injectivity among existential images
                    merged[variable] = target
                    used.add(target)
                elif bound != target:
                    return None
            return merged

        def closure_ok(covered: set[int], binding: dict[Variable, Variable]) -> bool:
            return all(
                self.atoms_of_var[variable] <= covered for variable in binding
            )

        checkpoint = self.checkpoint

        def backtrack(
            index: int, covered: set[int], binding: dict[Variable, Variable]
        ) -> None:
            if checkpoint is not None:
                checkpoint()
            if index == n:
                if len(covered) > len(best["covered"]) and closure_ok(
                    covered, binding
                ):
                    best["covered"] = frozenset(covered)
                    best["binding"] = dict(binding)
                return
            # Upper-bound prune: even covering everything left cannot beat best.
            if len(covered) + (n - index) <= len(best["covered"]):
                return
            for addition in self.candidates[index]:
                merged = consistent(binding, addition)
                if merged is not None:
                    covered.add(index)
                    backtrack(index + 1, covered, merged)
                    covered.remove(index)
            # Exclude this atom.  Property (3) ultimately requires that no
            # variable of an excluded atom is existentially mapped; bindings
            # only grow along a branch, so exclusion is already doomed when
            # one of the atom's variables is existentially bound now.  A
            # variable bound *later* is caught by closure_ok at the leaves.
            if not (self.query.body[index].variable_set() & binding.keys()):
                backtrack(index + 1, covered, binding)

        backtrack(0, set(), {})
        mapping = Substitution(dict(best["binding"]))  # type: ignore[arg-type]
        return TupleCore(self.view_tuple, best["covered"], mapping)  # type: ignore[arg-type]


def enumerate_consistent_cores(
    query: ConjunctiveQuery, view_tuple: ViewTuple
) -> list[frozenset[int]]:
    """All inclusion-maximal covered sets consistent with Definition 4.1.

    Lemma 4.2 asserts this list has at most one element (the tuple-core);
    the property-based tests call this function to check the lemma on
    random inputs rather than trusting the maximum-cardinality search.
    """
    search = _CoreSearch(query, view_tuple)
    n = len(query.body)
    consistent: set[frozenset[int]] = set()

    def merge(
        binding: dict[Variable, Variable], addition: dict[Variable, Variable]
    ) -> dict[Variable, Variable] | None:
        merged = dict(binding)
        used = set(binding.values())
        for variable, target in addition.items():
            bound = merged.get(variable)
            if bound is None:
                if target in used:
                    return None
                merged[variable] = target
                used.add(target)
            elif bound != target:
                return None
        return merged

    def closure_ok(covered: set[int], binding: dict[Variable, Variable]) -> bool:
        return all(
            search.atoms_of_var[variable] <= covered for variable in binding
        )

    def backtrack(
        index: int, covered: set[int], binding: dict[Variable, Variable]
    ) -> None:
        if index == n:
            if closure_ok(covered, binding):
                consistent.add(frozenset(covered))
            return
        for addition in search.candidates[index]:
            merged = merge(binding, addition)
            if merged is not None:
                covered.add(index)
                backtrack(index + 1, covered, merged)
                covered.remove(index)
        backtrack(index + 1, covered, binding)

    backtrack(0, set(), {})
    return [
        candidate
        for candidate in consistent
        if not any(candidate < other for other in consistent)
    ]


def tuple_core(
    query: ConjunctiveQuery,
    view_tuple: ViewTuple,
    *,
    checkpoint: Callable[[], None] | None = None,
) -> TupleCore:
    """Compute the unique tuple-core of *view_tuple* for the minimal *query*.

    *query* must already be minimal (CoreCover minimizes first); the
    function does not re-minimize.  ``checkpoint`` is called on every
    search node so a resource budget can cancel the search cooperatively.
    """
    return _CoreSearch(query, view_tuple, checkpoint).run()


def tuple_cores(
    query: ConjunctiveQuery,
    tuples: Sequence[ViewTuple],
    *,
    context: "PlannerContext | None" = None,
) -> list[TupleCore]:
    """Tuple-cores for a collection of view tuples, in the given order.

    With a :class:`~repro.planner.context.PlannerContext`, cores are
    memoized by (query, view definition, tuple atom) — the search runs
    once per structurally distinct view tuple.
    """
    if context is None:
        return [tuple_core(query, view_tuple) for view_tuple in tuples]
    return [context.tuple_core(query, view_tuple) for view_tuple in tuples]


def _atom_variables(atom: Atom) -> set[Variable]:
    return {arg for arg in atom.args if is_variable(arg)}
