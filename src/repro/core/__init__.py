"""The paper's contribution: view tuples, tuple-cores, CoreCover."""

from .certify import Certificate, certify
from .corecover import (
    CoreCoverResult,
    CoreCoverStats,
    add_filter_subgoal,
    core_cover,
    core_cover_impl,
    core_cover_star,
)
from .enumerate_lmrs import enumerate_view_tuple_lmrs, view_tuple_lattice
from .equivalence import (
    core_representatives,
    group_cores_by_coverage,
    group_equivalent_views,
    view_representatives,
)
from .lattice import (
    LmrLattice,
    RewritingRegion,
    build_lmr_lattice,
    classify_rewriting,
)
from .naive import naive_gmr_search, run_naive_gmr_search
from .set_cover import greedy_cover, irredundant_covers, minimum_covers
from .tuple_core import (
    TupleCore,
    enumerate_consistent_cores,
    tuple_core,
    tuple_cores,
)
from .view_tuples import ViewTuple, to_view_tuple_rewriting, view_tuples

__all__ = [
    "Certificate",
    "CoreCoverResult",
    "CoreCoverStats",
    "LmrLattice",
    "RewritingRegion",
    "TupleCore",
    "ViewTuple",
    "add_filter_subgoal",
    "build_lmr_lattice",
    "certify",
    "classify_rewriting",
    "core_cover",
    "core_cover_impl",
    "core_cover_star",
    "core_representatives",
    "enumerate_consistent_cores",
    "enumerate_view_tuple_lmrs",
    "greedy_cover",
    "group_cores_by_coverage",
    "group_equivalent_views",
    "irredundant_covers",
    "minimum_covers",
    "naive_gmr_search",
    "run_naive_gmr_search",
    "to_view_tuple_rewriting",
    "tuple_core",
    "tuple_cores",
    "view_representatives",
    "view_tuple_lattice",
    "view_tuples",
]
