"""View tuples ``T(Q, V)`` (Section 3.3).

A view tuple is obtained by (i) freezing the (minimized) query into its
canonical database ``D_Q``, (ii) evaluating each view definition over
``D_Q``, and (iii) thawing each answer tuple's frozen constants back to
the query's variables.  By construction, any rewriting built from view
tuples admits a containment mapping from its expansion to the query
(Lemma 3.2), which is what lets CoreCover skip half of the equivalence
test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..containment.canonical import (
    CanonicalDatabase,
    FrozenMarker,
    canonical_database,
)
from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery
from ..datalog.substitution import Substitution
from ..datalog.terms import Constant, FreshVariableFactory, Term, Variable
from ..engine.database import Database
from ..engine.evaluate import evaluate
from ..testing.faults import fire
from ..views.view import View, ViewCatalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.context import PlannerContext


@dataclass(frozen=True)
class ViewTuple:
    """One element of ``T(Q, V)``: a view atom over the query's terms.

    ``atom`` is the view predicate applied to query variables/constants,
    e.g. ``v1(M, anderson, C)`` in the car-loc-part example.
    """

    view: View
    atom: Atom

    def __str__(self) -> str:
        return str(self.atom)

    @property
    def name(self) -> str:
        """The underlying view's name."""
        return self.view.name

    def argument_terms(self) -> frozenset[Term]:
        """The set of query terms among the view tuple's arguments."""
        return frozenset(self.atom.args)

    def expansion(
        self, factory: FreshVariableFactory
    ) -> tuple[tuple[Atom, ...], frozenset[Variable]]:
        """The expansion ``t_v^exp`` and its set of fresh existential variables.

        Head variables of the view are substituted by the view tuple's
        arguments; existential variables become fresh variables drawn from
        *factory* (Definition 2.2 applied to a single subgoal).
        """
        mapping: dict[Variable, Term] = {
            head_var: arg
            for head_var, arg in zip(self.view.head_variables, self.atom.args)
        }
        fresh: set[Variable] = set()
        for existential in sorted(
            self.view.existential_variables(), key=lambda v: v.name
        ):
            renamed = factory.fresh_like(existential)
            mapping[existential] = renamed
            fresh.add(renamed)
        substitution = Substitution(mapping)
        return substitution.apply_atoms(self.view.definition.body), frozenset(fresh)


def to_view_tuple_rewriting(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: "ViewCatalog",
) -> ConjunctiveQuery | None:
    """The Lemma 3.2 transformation: rewrite *rewriting* over view tuples.

    Given any equivalent rewriting ``P``, there is a rewriting ``P'``
    whose subgoals are all view tuples, with ``P' ⊑ P``.  The
    construction follows the lemma's proof: take a containment mapping
    ``φ`` from ``P``'s expansion to the query (such a mapping witnesses
    ``Q ⊑ P^exp`` and always exists for equivalent rewritings) and
    replace every variable of ``P`` by its image, then drop duplicate
    subgoals.  The paper's example transforms P1 of car-loc-part into P2.

    When ``P`` is an equivalent rewriting the result is too; for a
    merely "containing" ``P`` (``Q ⊑ P^exp`` but not conversely) the
    transformation still applies but yields no equivalence guarantee.
    Returns ``None`` when ``Q ⋢ P^exp`` (no mapping exists at all).
    """
    from ..containment.containment import containment_mapping
    from ..views.expansion import expand

    expansion = expand(rewriting, views)
    mapping = containment_mapping(expansion, query)
    if mapping is None:
        return None
    transformed = rewriting.apply(mapping)
    return transformed.dedup_body()


def _thaw_value(value: object) -> Term:
    if isinstance(value, FrozenMarker):
        return Variable(value.variable_name)
    return Constant(value)


def view_tuples(
    query: ConjunctiveQuery,
    views: ViewCatalog | Iterable[View],
    canonical: CanonicalDatabase | None = None,
    *,
    context: "PlannerContext | None" = None,
) -> list[ViewTuple]:
    """Compute ``T(Q, V)`` for a (preferably minimized) query.

    The result is deterministic: tuples appear grouped by view in catalog
    order, then sorted by their rendered atom.

    With a :class:`~repro.planner.context.PlannerContext`, the evaluation
    of each view definition over the canonical database is memoized by
    (query, definition) — structurally duplicate views are evaluated once.
    The cache is only consulted when *canonical* really is the canonical
    database of *query*.

    When *views* is a :class:`ViewCatalog`, its predicate-signature
    index prunes the enumeration to the views sharing at least one body
    predicate with *query*: the others have no answer over the canonical
    database (their body atoms match no frozen fact), so skipping them
    changes nothing but the work done.  Pass an explicit view sequence
    to opt out.
    """
    if isinstance(views, ViewCatalog):
        views = views.relevant_views(query)
    if canonical is None:
        canonical = (
            context.canonical_database(query)
            if context is not None
            else canonical_database(query)
        )
    database = Database.from_facts(canonical.facts)
    use_cache = context is not None and canonical.query == query

    def args_for(view: View) -> tuple[tuple, ...]:
        rows = evaluate(view.definition, database)
        unique = {
            tuple(_thaw_value(value) for value in row) for row in rows
        }
        # Sorting by the rendered argument tuple matches the historical
        # sort by str(atom): the view-name prefix is constant per view.
        return tuple(
            sorted(unique, key=lambda args: ", ".join(map(str, args)))
        )

    tuples: list[ViewTuple] = []
    for view in views:
        if context is not None:
            context.checkpoint()  # cooperative cancellation per view
        if use_cache:
            all_args = context.view_tuple_args(
                query, view, lambda v=view: args_for(v)
            )
        else:
            all_args = args_for(view)
        for args in all_args:
            fire("enumeration")
            if context is not None:
                context.charge_view_tuple()
            tuples.append(ViewTuple(view, Atom(view.name, args)))
    return tuples
