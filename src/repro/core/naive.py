"""The naive GMR search suggested by Theorem 3.1.

"We compute all the view tuples for the query.  We start checking
combinations of view tuples [...] first all combinations containing one
view tuple, then all combinations containing two view tuples, and so on.
Each combination could be a rewriting P.  We test whether there is a
containment mapping from Q to P^exp.  [...]  We stop after having
considered all combinations of up to n view tuples" (n = number of query
subgoals, by [16]).

This baseline exists for correctness cross-checks against CoreCover and
for the scalability ablation benchmark.  It is registered as the
``naive`` backend; :func:`naive_gmr_search` is the legacy shim over the
registry.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING, Sequence

from ..containment.containment import containment_mapping
from ..containment.minimize import minimize
from ..datalog.query import ConjunctiveQuery
from ..views.expansion import expand
from ..views.view import View, ViewCatalog
from .view_tuples import view_tuples

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.context import PlannerContext


def naive_gmr_search(
    query: ConjunctiveQuery,
    views: ViewCatalog | Sequence[View],
) -> list[ConjunctiveQuery]:
    """All GMRs of *query*, by brute-force combination of view tuples.

    Exponential in the number of view tuples; use only on small inputs.
    Thin shim over ``plan(query, views, backend="naive")``.
    """
    from ..planner.registry import plan

    return plan(query, views, backend="naive").details


def run_naive_gmr_search(
    query: ConjunctiveQuery,
    views: ViewCatalog | Sequence[View],
    *,
    context: "PlannerContext | None" = None,
) -> list[ConjunctiveQuery]:
    """The naive search proper (registry backend entry point)."""
    minimize_fn = context.minimize if context is not None else minimize
    minimized = minimize_fn(query)
    catalog = views if isinstance(views, ViewCatalog) else ViewCatalog(views)
    tuples = view_tuples(minimized, catalog, context=context)
    limit = len(minimized.body)

    for size in range(1, limit + 1):
        found: list[ConjunctiveQuery] = []
        for combo in combinations(tuples, size):
            if context is not None:
                context.checkpoint()  # cooperative cancellation per combo
            candidate = ConjunctiveQuery(
                minimized.head, tuple(vt.atom for vt in combo)
            )
            if not candidate.is_safe():
                continue
            if _is_rewriting(candidate, minimized, catalog, context):
                found.append(candidate)
                if context is not None:
                    # View-tuple candidates passing the mapping test are
                    # equivalent rewritings (Lemma 3.2) — certified.
                    context.record_rewriting(candidate, certified=True)
        if found:
            return found
    return []


def _is_rewriting(
    candidate: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewCatalog,
    context: "PlannerContext | None" = None,
) -> bool:
    """Rewriting test for view-tuple candidates.

    The view-tuple construction guarantees a containment mapping from the
    candidate's expansion to the query (hence ``Q ⊑ candidate^exp``); the
    only direction left to check is a containment mapping from ``Q`` to
    the expansion, witnessing ``candidate^exp ⊑ Q``.
    """
    expansion = expand(candidate, views)
    if context is not None:
        return context.mapping_exists(query, expansion)
    return containment_mapping(query, expansion) is not None
