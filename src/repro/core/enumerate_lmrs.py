"""Enumerating locally-minimal rewritings inside the view-tuple space.

Theorem 3.1 defines the GMR search space as the LMRs that use only view
tuples.  CoreCover jumps straight to the covers; this module walks the
space itself, which is what the Figure 1/2 structure analysis needs:
compute the LMRs, then feed them to :func:`repro.core.lattice.build_lmr_lattice`
to obtain the containment partial order, the CMRs, and the GMRs of a
concrete query.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING, Iterator

from ..containment.containment import containment_mapping
from ..containment.minimize import minimize
from ..datalog.query import ConjunctiveQuery
from ..views.expansion import expand
from ..views.view import ViewCatalog
from .lattice import LmrLattice, build_lmr_lattice
from .view_tuples import view_tuples

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.context import PlannerContext


def enumerate_view_tuple_lmrs(
    query: ConjunctiveQuery,
    views: ViewCatalog,
    max_size: int | None = None,
    limit: int | None = 100,
    *,
    context: "PlannerContext | None" = None,
    acyclic_fast_path: bool = True,
) -> Iterator[ConjunctiveQuery]:
    """Yield the LMRs of *query* whose subgoals are view tuples.

    A candidate is a subset of ``T(Q, V)``; it is kept when it is an
    equivalent rewriting and no proper subset of it is (subset
    minimality, i.e. local minimality within the space).  Candidates are
    enumerated smallest-first, so supersets of found LMRs are skipped
    cheaply.  ``max_size`` defaults to the number of query subgoals (the
    [16] bound); ``limit`` caps the yield for adversarial view sets.

    With a *context* and an alpha-acyclic comparison-free *query*, the
    per-candidate containment checks run on the acyclic fast path (same
    routing rule as ``plan()``); the LMRs and their order are identical
    either way — the guided engine's bit-identical contract.
    """
    minimize_fn = context.minimize if context is not None else minimize
    minimized = minimize_fn(query)
    route = (
        context is not None
        and acyclic_fast_path
        and not any(atom.is_comparison for atom in query.body)
        and context.join_tree(query) is not None
    )
    if route:
        assert context is not None
        with context.routed_acyclic():
            yield from _enumerate_lmrs(
                minimized, views, max_size, limit, context
            )
    else:
        yield from _enumerate_lmrs(minimized, views, max_size, limit, context)


def _enumerate_lmrs(
    minimized: ConjunctiveQuery,
    views: ViewCatalog,
    max_size: int | None,
    limit: int | None,
    context: "PlannerContext | None",
) -> Iterator[ConjunctiveQuery]:
    tuples = view_tuples(minimized, views, context=context)
    bound = max_size or len(minimized.body)
    found: list[frozenset[int]] = []
    yielded = 0

    for size in range(1, min(bound, len(tuples)) + 1):
        for indices in combinations(range(len(tuples)), size):
            if context is not None:
                context.checkpoint()  # cooperative cancellation per combo
            index_set = frozenset(indices)
            if any(previous <= index_set for previous in found):
                continue
            candidate = ConjunctiveQuery(
                minimized.head, tuple(tuples[i].atom for i in indices)
            )
            if not candidate.is_safe():
                continue
            expansion = expand(candidate, views)
            if containment_mapping(minimized, expansion) is None:
                continue  # not a rewriting (the other direction is free)
            found.append(index_set)
            yielded += 1
            yield candidate
            if limit is not None and yielded >= limit:
                return


def view_tuple_lattice(
    query: ConjunctiveQuery,
    views: ViewCatalog,
    limit: int | None = 100,
) -> LmrLattice:
    """The Figure 2 lattice of a query's view-tuple LMRs."""
    lmrs = list(enumerate_view_tuple_lmrs(query, views, limit=limit))
    return build_lmr_lattice(lmrs)
