"""Exact set-cover enumeration used by CoreCover and CoreCover*.

Step (4) of CoreCover (Figure 4) reduces finding GMRs to the classic
set-covering problem [8]: cover the minimal query's subgoals with the
fewest tuple-cores.  CoreCover* additionally needs every *irredundant*
cover (no member removable), which characterizes the minimal rewritings
using view tuples (Theorem 5.1).

Both enumerations branch on the lowest-numbered uncovered element, which
visits every relevant cover at least once; duplicates are removed through
a result set.  Dominated-set pruning is deliberately **not** applied: a
set strictly contained in another can still participate in a minimum
cover (e.g. universe ``{1,2,3}``, sets ``A={1}``, ``B={1,2}``,
``D={2,3}`` — both ``{B,D}`` and ``{A,D}`` are minimum).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..testing.faults import fire


def minimum_covers(
    universe: frozenset[int],
    sets: Sequence[frozenset[int]],
    *,
    checkpoint: Callable[[], None] | None = None,
    pivot_order: Sequence[int] | None = None,
) -> list[tuple[int, ...]]:
    """All covers of *universe* with the minimum number of sets.

    Returns sorted index tuples into *sets*; empty list when no cover
    exists.  The empty universe is covered by the empty cover.
    ``checkpoint`` is called on every branch node (cooperative
    cancellation under a resource budget).

    ``pivot_order`` ranks the universe elements the brancher pivots on
    (default: numeric order).  The acyclic fast path passes the query's
    join-tree traversal here so chosen sets grow along connected
    subtrees, which fails impossible branches earlier.  The *result* is
    order-independent: branching on any uncovered element visits every
    minimum cover (each must contain a set covering the pivot), the
    best-size bound never prunes a minimum cover, and results are
    returned sorted — so a pivot order changes node counts, never
    answers.
    """
    if not universe:
        return [()]
    element_to_sets = _element_index(universe, sets)
    if any(not options for options in element_to_sets.values()):
        return []
    pick = _pivot_picker(pivot_order)

    best_size = len(universe) + 1  # a cover never needs more sets than elements
    results: set[tuple[int, ...]] = set()

    def branch(uncovered: frozenset[int], chosen: tuple[int, ...]) -> None:
        nonlocal best_size
        fire("enumeration")
        if checkpoint is not None:
            checkpoint()
        if not uncovered:
            cover = tuple(sorted(chosen))
            if len(cover) < best_size:
                best_size = len(cover)
                results.clear()
            if len(cover) == best_size:
                results.add(cover)
            return
        if len(chosen) + 1 > best_size:
            return
        pivot = pick(uncovered)
        for index in element_to_sets[pivot]:
            if index in chosen:
                continue
            branch(uncovered - sets[index], chosen + (index,))

    branch(universe, ())
    return sorted(results)


def irredundant_covers(
    universe: frozenset[int],
    sets: Sequence[frozenset[int]],
    max_covers: int | None = None,
    *,
    checkpoint: Callable[[], None] | None = None,
    on_cover: Callable[[tuple[int, ...]], None] | None = None,
    pivot_order: Sequence[int] | None = None,
) -> list[tuple[int, ...]]:
    """All irredundant covers of *universe* (no member can be dropped).

    These are the covers in which every set contributes at least one
    element not covered by the others.  ``max_covers`` caps the search
    for pathological inputs (e.g. many identical views — Section 5.2
    motivates representatives precisely to avoid the ``2^n - 1`` blowup).
    ``checkpoint`` is called on every branch node; ``on_cover`` fires once
    for each *new* irredundant cover as it is discovered, which is what
    lets the anytime planner keep best-so-far results when the search is
    cancelled mid-enumeration (irredundant covers are additive — a found
    cover is never retracted later).

    ``pivot_order`` works as in :func:`minimum_covers`; the uncapped
    enumeration is exhaustive, so it changes traversal, not results.
    **Callers must not pass it together with ``max_covers``** — which
    covers survive a cap depends on discovery order, so the fast path
    only reorders uncapped enumerations (enforced here).
    """
    if pivot_order is not None and max_covers is not None:
        raise ValueError(
            "pivot_order with max_covers would change which covers are "
            "found before the cap; pass one or the other"
        )
    if not universe:
        return [()]
    element_to_sets = _element_index(universe, sets)
    if any(not options for options in element_to_sets.values()):
        return []
    pick = _pivot_picker(pivot_order)

    results: set[tuple[int, ...]] = set()

    def is_irredundant(chosen: Sequence[int]) -> bool:
        for candidate in chosen:
            others: set[int] = set()
            for index in chosen:
                if index != candidate:
                    others.update(sets[index])
            if universe <= others:
                return False
        return True

    def branch(uncovered: frozenset[int], chosen: tuple[int, ...]) -> None:
        if max_covers is not None and len(results) >= max_covers:
            return
        fire("enumeration")
        if checkpoint is not None:
            checkpoint()
        if not uncovered:
            cover = tuple(sorted(chosen))
            if is_irredundant(cover) and cover not in results:
                results.add(cover)
                if on_cover is not None:
                    on_cover(cover)
            return
        if len(chosen) >= len(universe):
            return  # an irredundant cover has at most |universe| sets
        pivot = pick(uncovered)
        for index in element_to_sets[pivot]:
            if index in chosen:
                continue
            branch(uncovered - sets[index], chosen + (index,))

    branch(universe, ())
    return sorted(results)


def greedy_cover(
    universe: frozenset[int], sets: Sequence[frozenset[int]]
) -> tuple[int, ...] | None:
    """The classic ln(n)-approximate greedy cover, or ``None`` if impossible.

    Exposed for the scalability ablation: CoreCover itself uses the exact
    enumerations above.
    """
    uncovered = set(universe)
    chosen: list[int] = []
    while uncovered:
        best_index = max(
            range(len(sets)),
            key=lambda i: (len(uncovered & sets[i]), -i),
            default=None,
        )
        if best_index is None or not uncovered & sets[best_index]:
            return None
        chosen.append(best_index)
        uncovered -= sets[best_index]
    return tuple(sorted(chosen))


def _pivot_picker(
    pivot_order: Sequence[int] | None,
) -> Callable[[frozenset[int]], int]:
    """A pivot chooser ranking elements by *pivot_order* (default numeric).

    Elements missing from *pivot_order* rank after every listed one, in
    numeric order, so a partial order is still deterministic.
    """
    if pivot_order is None:
        return min
    rank = {element: position for position, element in enumerate(pivot_order)}
    fallback = len(rank)

    def pick(uncovered: frozenset[int]) -> int:
        return min(uncovered, key=lambda e: (rank.get(e, fallback), e))

    return pick


def _element_index(
    universe: frozenset[int], sets: Sequence[frozenset[int]]
) -> dict[int, list[int]]:
    index = {element: [] for element in universe}
    for position, members in enumerate(sets):
        for element in members & universe:
            index[element].append(position)
    return index
