"""The CoreCover and CoreCover* algorithms (Sections 4 and 5).

``CoreCover`` (Figure 4) finds all globally-minimal rewritings (GMRs) of a
query — optimal under cost model M1:

1. minimize the query;
2. compute the view tuples ``T(Q, V)`` over the canonical database;
3. compute each view tuple's tuple-core;
4. cover the query subgoals with the minimum number of tuple-cores; each
   cover yields a GMR (Theorem 4.1 / Corollary 4.1).

``CoreCover*`` (Section 5.1) differs only in the last step: it enumerates
*all* irredundant covers, yielding all minimal rewritings using view
tuples — the search space guaranteed to contain an M2-optimal rewriting
(Theorem 5.1).  Empty-core view tuples are reported as candidate
*filtering subgoals* for the optimizer (rewriting P3 of the car-loc-part
example).

Both entry points accept ``group_views``/``group_tuples`` switches so the
Section 5.2 concise representation can be ablated, reproducing the
scalability argument of Section 7.

All stages run on a :class:`~repro.planner.context.PlannerContext`:
minimization, canonical databases, view evaluation, and tuple-cores are
memoized on interned structural keys, and the context's counters
(homomorphism searches, cache hits/misses) are reported through
:class:`CoreCoverStats`.  ``core_cover`` and ``core_cover_star`` are thin
shims over the :mod:`repro.planner.registry`; the implementation lives in
:func:`core_cover_impl`, which the ``corecover`` / ``corecover-star``
backends call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..datalog.query import ConjunctiveQuery
from ..errors import UnsupportedQueryError
from ..planner.context import PlannerContext
from ..profiling.phases import profile_from_stages
from ..views.view import View, ViewCatalog
from .equivalence import (
    core_representatives,
    group_cores_by_coverage,
    group_equivalent_views,
)
from .set_cover import irredundant_covers, minimum_covers
from .tuple_core import TupleCore, tuple_cores
from .view_tuples import ViewTuple, view_tuples


@dataclass(frozen=True)
class CoreCoverStats:
    """Instrumentation matching the quantities plotted in Figures 6-9.

    The planner-level fields (``hom_searches`` onward) report this run's
    deltas on the :class:`PlannerContext`: how many homomorphism and
    tuple-core searches actually ran, and how often the memoization layer
    answered instead.
    """

    total_views: int
    view_classes: int
    total_view_tuples: int
    view_tuple_classes: int
    #: Coverage classes not strictly contained in another class — the
    #: small family the paper's "bounded by the number of query subgoals"
    #: argument refers to (Section 5.2, advantage (2)).
    maximal_tuple_classes: int
    nonempty_cores: int
    elapsed_seconds: float
    minimize_seconds: float
    grouping_seconds: float
    view_tuple_seconds: float
    core_seconds: float
    cover_seconds: float
    #: Views surviving the predicate-signature prune — the only ones the
    #: grouping and view-tuple stages ever enumerated.  Equals
    #: ``total_views`` when pruning is disabled (``prune_views=False``);
    #: ``-1`` for stats built before pruning existed.
    touched_views: int = -1
    #: Whether the run's PlannerContext had memoization enabled.
    caching_enabled: bool = True
    #: Homomorphism searches actually performed during this run.
    hom_searches: int = 0
    #: Tuple-core backtracking searches actually performed.
    core_searches: int = 0
    #: Cache hits/misses summed over all planner caches, for this run.
    cache_hits: int = 0
    cache_misses: int = 0
    #: ``(canonical phase, seconds)`` in taxonomy order (see
    #: :mod:`repro.profiling.phases`); empty for stats built elsewhere.
    phase_seconds: tuple[tuple[str, float], ...] = ()
    #: Whether the run executed under the acyclic fast path (``plan()``
    #: routing; always ``False`` for direct ``core_cover_impl`` calls).
    acyclic_fast_path: bool = False
    #: Depth of the minimized query's join tree (nodes on the longest
    #: root-to-leaf path); ``-1`` when no tree was built (general path,
    #: or a minimized core that turned out cyclic).
    join_tree_depth: int = -1
    #: Homomorphism-search work units expanded during this run.
    hom_nodes: int = 0
    #: Searches the router actually guided (0 on the general path).
    fast_path_searches: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups served from cache (0.0 when unused)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def touched_views_ratio(self) -> float:
        """Fraction of the catalog the planner actually enumerated.

        1.0 for an empty catalog or for stats predating the prune — the
        conservative reading ("everything was touched").
        """
        if self.touched_views < 0 or not self.total_views:
            return 1.0
        return self.touched_views / self.total_views


@dataclass(frozen=True)
class CoreCoverResult:
    """Everything CoreCover computed on the way to its rewritings."""

    query: ConjunctiveQuery
    minimized_query: ConjunctiveQuery
    view_tuples: tuple[ViewTuple, ...]
    cores: tuple[TupleCore, ...]
    rewritings: tuple[ConjunctiveQuery, ...]
    filter_candidates: tuple[ViewTuple, ...]
    stats: CoreCoverStats

    @property
    def has_rewriting(self) -> bool:
        """Whether the query has any equivalent rewriting using the views."""
        return bool(self.rewritings)

    def minimum_subgoals(self) -> int | None:
        """Number of subgoals of a GMR, or ``None`` without rewritings."""
        if not self.rewritings:
            return None
        return min(len(rewriting.body) for rewriting in self.rewritings)


def core_cover(
    query: ConjunctiveQuery,
    views: ViewCatalog | Sequence[View],
    group_views: bool = True,
    group_tuples: bool = True,
    *,
    prune_views: bool = True,
    acyclic_fast_path: bool = True,
    context: PlannerContext | None = None,
) -> CoreCoverResult:
    """All globally-minimal rewritings of *query* using *views* (M1-optimal).

    Thin shim over ``plan(query, views, backend="corecover")``.
    """
    from ..planner.registry import plan

    return plan(
        query,
        views,
        backend="corecover",
        context=context,
        acyclic_fast_path=acyclic_fast_path,
        group_views=group_views,
        group_tuples=group_tuples,
        prune_views=prune_views,
    ).details


def core_cover_star(
    query: ConjunctiveQuery,
    views: ViewCatalog | Sequence[View],
    group_views: bool = True,
    group_tuples: bool = True,
    max_rewritings: int | None = None,
    *,
    prune_views: bool = True,
    acyclic_fast_path: bool = True,
    context: PlannerContext | None = None,
) -> CoreCoverResult:
    """All minimal rewritings using view tuples (the M2 search space).

    Thin shim over ``plan(query, views, backend="corecover-star")``.
    """
    from ..planner.registry import plan

    return plan(
        query,
        views,
        backend="corecover-star",
        context=context,
        acyclic_fast_path=acyclic_fast_path,
        group_views=group_views,
        group_tuples=group_tuples,
        max_rewritings=max_rewritings,
        prune_views=prune_views,
    ).details


def core_cover_impl(
    query: ConjunctiveQuery,
    views: ViewCatalog | Sequence[View],
    *,
    all_minimal: bool = False,
    group_views: bool = True,
    group_tuples: bool = True,
    prune_views: bool = True,
    max_rewritings: int | None = None,
    context: PlannerContext | None = None,
) -> CoreCoverResult:
    """The CoreCover pipeline (registry backend entry point)."""
    ctx = context if context is not None else PlannerContext()
    before = ctx.snapshot()
    started = time.perf_counter()
    view_list = list(views)
    _reject_comparisons(query, view_list)

    # Step (1): minimize the query.
    t0 = time.perf_counter()
    with ctx.stage("minimize"):
        minimized = ctx.minimize(query)
    minimize_seconds = time.perf_counter() - t0

    # Predicate-signature pruning: a view sharing no (predicate, arity)
    # pair with the minimized query has no answer over its canonical
    # database — no view tuple, no core, no place in any rewriting
    # (Section 3.3) — so neither the grouping hom searches nor the
    # view-tuple evaluation need ever touch it.  A ViewCatalog answers
    # from its index; a bare sequence falls back to a signature scan.
    t0 = time.perf_counter()
    with ctx.stage("grouping"):
        if not prune_views:
            touched = view_list
        elif isinstance(views, ViewCatalog):
            touched = list(views.relevant_views(minimized))
        else:
            pairs = frozenset(
                (atom.predicate, atom.arity)
                for atom in minimized.body
                if not atom.is_comparison
            )
            touched = [
                view
                for view in view_list
                if not view.predicate_signature()
                or view.predicate_signature() & pairs
            ]

        # Section 5.2: group the surviving views into equivalence
        # classes, keep representatives.
        if group_views:
            classes = group_equivalent_views(touched, context=ctx)
            representatives = [members[0] for members in classes]
            view_classes = len(classes)
        else:
            representatives = touched
            view_classes = len(touched)
    grouping_seconds = time.perf_counter() - t0

    # Step (2): view tuples over the canonical database.  The canonical-DB
    # construction is timed as its own stage so phase profiles can show
    # freezing separately from the (usually dominant) tuple enumeration;
    # ``view_tuple_seconds`` keeps covering both, as it always has.
    t0 = time.perf_counter()
    with ctx.stage("canonical_db"):
        canonical = ctx.canonical_database(minimized)
    with ctx.stage("view_tuples"):
        tuples = view_tuples(minimized, representatives, canonical, context=ctx)
    view_tuple_seconds = time.perf_counter() - t0

    # Step (3): tuple-cores.
    t0 = time.perf_counter()
    with ctx.stage("tuple_cores"):
        cores = tuple_cores(minimized, tuples, context=ctx)
    core_seconds = time.perf_counter() - t0

    # Section 5.2 again: group view tuples by coverage.
    if group_tuples:
        working_cores = core_representatives(cores)
    else:
        working_cores = list(cores)
    coverage_sets = set(group_cores_by_coverage(cores))
    tuple_class_count = len(coverage_sets)
    maximal_tuple_classes = sum(
        1
        for covered in coverage_sets
        if covered
        and not any(covered < other for other in coverage_sets)
    )

    nonempty = [core for core in working_cores if not core.is_empty]
    empty = [core.view_tuple for core in cores if core.is_empty]

    # Acyclicity is not hereditary, so the *minimized* query gets its
    # own join tree: its root-first traversal orders the set-cover
    # pivots so chosen tuple-cores grow along connected subtrees.
    # ``None`` (fast path off, or a cyclic core) keeps the numeric
    # pivot order; either way the covers found are identical.
    tree = ctx.join_tree(minimized) if ctx.acyclic_route else None
    pivot_order = tree.traversal() if tree is not None else None

    # Step (4): cover the query subgoals.
    t0 = time.perf_counter()
    with ctx.stage("cover"):
        ctx.checkpoint()
        universe = frozenset(range(len(minimized.body)))
        cover_inputs = [core.covered for core in nonempty]
        checkpoint = ctx.meter.checkpoint if ctx.meter is not None else None
        if all_minimal:
            # Irredundant covers are additive, so each one can be recorded
            # as a certified best-so-far rewriting the moment it is found
            # (view-tuple rewritings are equivalent by Theorem 5.1).
            def found(cover: tuple[int, ...]) -> None:
                ctx.record_rewriting(
                    _build_rewriting(minimized, [nonempty[i] for i in cover]),
                    certified=True,
                )

            # A capped enumeration keeps the default pivot order: which
            # covers exist before the cap depends on discovery order.
            covers = irredundant_covers(
                universe,
                cover_inputs,
                max_rewritings,
                checkpoint=checkpoint,
                on_cover=found,
                pivot_order=(
                    pivot_order if max_rewritings is None else None
                ),
            )
            rewritings = tuple(
                _build_rewriting(minimized, [nonempty[i] for i in cover])
                for cover in covers
            )
        else:
            # Minimum covers may be *retracted* mid-search (a smaller cover
            # clears the result set), so they are only recorded once the
            # enumeration has completed.
            covers = minimum_covers(
                universe,
                cover_inputs,
                checkpoint=checkpoint,
                pivot_order=pivot_order,
            )
            rewritings = tuple(
                _build_rewriting(minimized, [nonempty[i] for i in cover])
                for cover in covers
            )
            for rewriting in rewritings:
                ctx.record_rewriting(rewriting, certified=True)
    cover_seconds = time.perf_counter() - t0

    delta = ctx.snapshot().since(before)
    stats = CoreCoverStats(
        total_views=len(view_list),
        view_classes=view_classes,
        touched_views=len(touched),
        total_view_tuples=len(tuples),
        view_tuple_classes=tuple_class_count,
        maximal_tuple_classes=maximal_tuple_classes,
        nonempty_cores=len(nonempty),
        elapsed_seconds=time.perf_counter() - started,
        minimize_seconds=minimize_seconds,
        grouping_seconds=grouping_seconds,
        view_tuple_seconds=view_tuple_seconds,
        core_seconds=core_seconds,
        cover_seconds=cover_seconds,
        caching_enabled=delta.caching_enabled,
        hom_searches=delta.hom_searches,
        core_searches=delta.core_searches,
        cache_hits=delta.cache_hits,
        cache_misses=delta.cache_misses,
        phase_seconds=profile_from_stages(delta.stages).phases,
        acyclic_fast_path=ctx.acyclic_route,
        join_tree_depth=tree.depth if tree is not None else -1,
        hom_nodes=delta.hom_nodes,
        fast_path_searches=delta.fast_path_searches,
    )
    return CoreCoverResult(
        query=query,
        minimized_query=minimized,
        view_tuples=tuple(tuples),
        cores=tuple(cores),
        rewritings=rewritings,
        filter_candidates=tuple(empty),
        stats=stats,
    )


def _reject_comparisons(
    query: ConjunctiveQuery, view_list: Sequence[View]
) -> None:
    """CoreCover handles pure conjunctive queries (Section 2.1).

    Built-in comparison predicates make rewritings unions of CQs
    (Section 8); raising here beats silently reporting "no rewriting".
    """
    offenders = [str(atom) for atom in query.body if atom.is_comparison]
    for view in view_list:
        offenders.extend(
            f"{view.name}: {atom}"
            for atom in view.definition.body
            if atom.is_comparison
        )
    if offenders:
        raise UnsupportedQueryError(
            "CoreCover supports pure conjunctive queries/views; found "
            f"comparison atoms: {', '.join(offenders)}. See "
            "repro.extensions for the Section 8 built-in-predicate support."
        )


def _build_rewriting(
    minimized: ConjunctiveQuery, chosen: Sequence[TupleCore]
) -> ConjunctiveQuery:
    """Combine the chosen view tuples into a rewriting (Theorem 4.1)."""
    body = tuple(core.view_tuple.atom for core in chosen)
    return ConjunctiveQuery(minimized.head, body)


def add_filter_subgoal(
    rewriting: ConjunctiveQuery, filter_tuple: ViewTuple
) -> ConjunctiveQuery:
    """Append an (empty-core) view tuple as a filtering subgoal.

    Under M2 this can lower the plan cost when the filter relation is
    selective (rewriting P3 vs. P2 in the car-loc-part example); the
    result is still an equivalent rewriting because the filter's expansion
    maps into the query.
    """
    return rewriting.with_body(rewriting.body + (filter_tuple.atom,))
