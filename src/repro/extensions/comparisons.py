"""Containment of conjunctive queries with built-in comparisons.

Section 8 of the paper extends the rewriting problem to queries and views
with built-in predicates (``<=`` etc.), where rewritings become unions of
conjunctive queries.  Chandra-Merlin homomorphisms are no longer complete
for such queries; the classic complete test (Klug 1988; Gupta, Sagiv,
Ullman, Widom 1994) enumerates the *completions* of the containee:

    ``Q1 ⊑ Q2`` over densely ordered domains iff for **every** total
    preorder of ``Q1``'s terms consistent with ``Q1``'s comparisons,
    the canonical database induced by that preorder satisfies ``Q2``.

A completion is an ordered set partition of the terms: terms in one block
are equal, and blocks are strictly increasing.  The number of completions
is the ordered Bell number of the term count — fine for the small queries
of the Section 8 examples (the test guards against larger inputs).

Comparisons are interpreted over a dense linear order; constants must be
mutually comparable Python values (e.g. all numbers).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..datalog.query import ConjunctiveQuery
from ..datalog.terms import Constant, Term
from ..datalog.ucq import UnionQuery, as_union
from ..engine.database import Database
from ..engine.evaluate import evaluate

#: Completion enumeration is (ordered Bell number)-sized; this caps the
#: number of distinct terms for which the test is attempted.
MAX_TERMS = 7


class TooManyTermsError(ValueError):
    """Raised when a query has too many terms for completion enumeration."""


def _ordered_partitions(items: Sequence[object]) -> Iterator[list[list[object]]]:
    """All ordered set partitions (sequences of disjoint blocks) of *items*."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _ordered_partitions(rest):
        # Insert ``first`` into an existing block...
        for index in range(len(partition)):
            grown = [list(block) for block in partition]
            grown[index].append(first)
            yield grown
        # ...or as a new singleton block at any position.
        for index in range(len(partition) + 1):
            grown = [list(block) for block in partition]
            grown.insert(index, [first])
            yield grown


def _comparison_holds_on_ranks(op: str, left: int, right: int) -> bool:
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    raise ValueError(f"unknown comparison {op!r}")


def _terms_of(query: ConjunctiveQuery) -> list[Term]:
    seen: dict[Term, None] = {}
    for atom in query.body:
        for arg in atom.args:
            seen.setdefault(arg, None)
    for arg in query.head.args:
        seen.setdefault(arg, None)
    return list(seen)


def completions(query: ConjunctiveQuery) -> Iterator[dict[Term, int]]:
    """All rank assignments (term -> block index) consistent with *query*.

    Each yielded mapping is one completion: equal ranks mean equated
    terms, and ranks increase with the dense order.  Completions placing
    two distinct constants in one block, ordering constants against their
    actual values, or violating the query's own comparisons are skipped.
    """
    terms = _terms_of(query)
    if len(terms) > MAX_TERMS:
        raise TooManyTermsError(
            f"{len(terms)} distinct terms exceed the completion test's "
            f"limit ({MAX_TERMS})"
        )
    comparisons = [atom for atom in query.body if atom.is_comparison]

    for partition in _ordered_partitions(terms):
        ranks: dict[Term, int] = {}
        valid = True
        previous_constant = None
        for rank, block in enumerate(partition):
            constants = [t for t in block if isinstance(t, Constant)]
            if len(constants) > 1:
                valid = False
                break
            if constants:
                value = constants[0].value
                if previous_constant is not None and not previous_constant < value:
                    valid = False
                    break
                previous_constant = value
            for term in block:
                ranks[term] = rank
        if not valid:
            continue
        if all(
            _comparison_holds_on_ranks(
                atom.predicate, ranks[atom.args[0]], ranks[atom.args[1]]
            )
            for atom in comparisons
        ):
            yield ranks


def _canonical_database_for(
    query: ConjunctiveQuery, ranks: dict[Term, int]
) -> tuple[Database, tuple[int, ...]]:
    """The canonical database of one completion, plus the head's rank tuple.

    Every term is interpreted by its block rank (an integer), so the
    engine's comparison filters evaluate the dense order faithfully.
    """
    database = Database()
    for atom in query.body:
        if atom.is_comparison:
            continue
        database.add_fact(atom.predicate, tuple(ranks[arg] for arg in atom.args))
    head = tuple(ranks[arg] for arg in query.head.args)
    return database, head


def is_contained_with_comparisons(
    inner: ConjunctiveQuery | UnionQuery,
    outer: ConjunctiveQuery | UnionQuery,
) -> bool:
    """Complete containment test for (unions of) CQs with comparisons.

    ``inner ⊑ outer`` over densely ordered domains.  For unions the test
    distributes over the containee's disjuncts (each completion of each
    disjunct must satisfy *some* disjunct of *outer* — checked at once by
    evaluating the whole union on the completion's canonical database).
    """
    inner_union = as_union(inner)
    outer_union = as_union(outer)
    _reject_constants(inner_union)
    _reject_constants(outer_union)
    for disjunct in inner_union.disjuncts:
        for ranks in completions(disjunct):
            database, head = _canonical_database_for(disjunct, ranks)
            if not any(
                head in evaluate(outer_disjunct, database)
                for outer_disjunct in outer_union.disjuncts
            ):
                return False
    return True


def _reject_constants(union: UnionQuery) -> None:
    """The rank-based canonical databases interpret terms by block index,
    which is sound only when no constants need interpreting alongside the
    dense order.  Constant support would require rational representatives
    pinned to the constant values; it is out of scope (as in the paper's
    Section 8, which uses variable-only examples)."""
    for disjunct in union.disjuncts:
        if disjunct.constants():
            raise NotImplementedError(
                "the completion-based containment test supports "
                "variable-only queries; found constants in "
                f"{disjunct}"
            )


def is_equivalent_with_comparisons(
    left: ConjunctiveQuery | UnionQuery,
    right: ConjunctiveQuery | UnionQuery,
) -> bool:
    """Equivalence over densely ordered domains."""
    return is_contained_with_comparisons(
        left, right
    ) and is_contained_with_comparisons(right, left)
