"""Section 8 extensions: built-in comparisons and union rewritings."""

from .comparisons import (
    TooManyTermsError,
    completions,
    is_contained_with_comparisons,
    is_equivalent_with_comparisons,
)
from .ucq_rewriting import (
    expand_union,
    is_equivalent_ucq_rewriting,
    maximally_contained_rewriting,
)

__all__ = [
    "TooManyTermsError",
    "completions",
    "expand_union",
    "is_contained_with_comparisons",
    "is_equivalent_ucq_rewriting",
    "is_equivalent_with_comparisons",
    "maximally_contained_rewriting",
]
