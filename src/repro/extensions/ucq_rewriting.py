"""Union-of-CQ rewritings (Section 8).

Two pieces of the paper's closing discussion become executable here:

* :func:`is_equivalent_ucq_rewriting` — the closed-world equivalence test
  for a rewriting that is a *union* of conjunctive queries whose
  expansion may contain built-in comparisons (the paper's P1/P2 example);
* :func:`maximally_contained_rewriting` — for the open-world side the
  paper mentions as ongoing work: the union of all MiniCon combinations,
  which is the maximally-contained rewriting for pure conjunctive
  queries (Pottinger & Levy 2000).
"""

from __future__ import annotations

from typing import Iterable

from ..baselines.minicon import minicon
from ..containment.containment import is_contained_in
from ..datalog.query import ConjunctiveQuery
from ..datalog.ucq import UnionQuery, as_union
from ..views.expansion import expand
from ..views.view import ViewCatalog
from .comparisons import is_equivalent_with_comparisons


def expand_union(
    rewriting: ConjunctiveQuery | UnionQuery | Iterable[ConjunctiveQuery],
    views: ViewCatalog,
) -> UnionQuery:
    """Expand every disjunct of a UCQ rewriting over the views."""
    union = as_union(rewriting)
    return UnionQuery(tuple(expand(q, views) for q in union.disjuncts))


def is_equivalent_ucq_rewriting(
    rewriting: ConjunctiveQuery | UnionQuery | Iterable[ConjunctiveQuery],
    query: ConjunctiveQuery,
    views: ViewCatalog,
) -> bool:
    """Definition 2.3 lifted to unions with comparisons.

    The rewriting's disjuncts are expanded over the views and the
    resulting union is compared with the query under the dense-order
    semantics (completion-based test).
    """
    expansion = expand_union(rewriting, views)
    return is_equivalent_with_comparisons(expansion, as_union(query))


def maximally_contained_rewriting(
    query: ConjunctiveQuery,
    views: ViewCatalog,
    max_disjuncts: int | None = 64,
) -> UnionQuery | None:
    """The union of MiniCon's contained rewritings, redundancy-pruned.

    For pure conjunctive queries and views this union is the maximally
    contained rewriting.  Disjuncts whose expansion is contained in
    another disjunct's expansion are dropped, so the result is a minimal
    union.  Returns ``None`` when no contained rewriting exists.
    """
    result = minicon(query, views, max_rewritings=max_disjuncts)
    disjuncts = list(result.contained_rewritings)
    if not disjuncts:
        return None

    expansions = {id(d): expand(d, views) for d in disjuncts}
    kept: list[ConjunctiveQuery] = []
    for candidate in disjuncts:
        if any(
            is_contained_in(expansions[id(candidate)], expansions[id(k)])
            for k in kept
        ):
            continue  # already covered by a kept disjunct
        kept = [
            k
            for k in kept
            if not is_contained_in(expansions[id(k)], expansions[id(candidate)])
        ]
        kept.append(candidate)
    return UnionQuery(tuple(kept))
