"""A query mediator: the paper's pipeline packaged as one object.

This is the interface a data-integration or warehousing system (the
applications motivating the paper's introduction) would actually embed:
clients ask conjunctive queries, the mediator holds the view definitions
and the materialized view relations, and every answer is produced by

1. generating the rewriting search space with CoreCover*,
2. picking a cost-optimal physical plan (M2 by default, with the
   filtering-subgoal pass),
3. executing the plan over the view database.

When a query has **no** equivalent rewriting, the mediator degrades
gracefully to the *certain answers* computed by the inverse-rules
algorithm — sound (a subset of the true answer) rather than failing.

Plans are cached per query (keyed by a canonical form), so repeated
queries pay the rewriting search once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .baselines.inverse_rules import certain_answers
from .core.corecover import core_cover_star
from .cost.optimizer import (
    OptimizedPlan,
    best_rewriting_m2,
    improve_with_filters,
    optimal_plan_m3,
)
from .cost.report import explain_plan
from .datalog.query import ConjunctiveQuery
from .engine.database import Database
from .engine.materialize import materialize_views
from .views.view import View, ViewCatalog


@dataclass(frozen=True)
class MediatedAnswer:
    """An answer plus how it was obtained."""

    rows: frozenset[tuple[object, ...]]
    #: ``"rewriting"`` (exact, via an equivalent rewriting) or
    #: ``"certain"`` (sound lower bound, via inverse rules).
    method: str
    plan: OptimizedPlan | None = None

    @property
    def exact(self) -> bool:
        """Whether the rows are exactly the query's answer."""
        return self.method == "rewriting"


class Mediator:
    """Answers conjunctive queries using only materialized views."""

    def __init__(
        self,
        views: ViewCatalog | Iterable[View],
        view_database: Database | None = None,
        base_database: Database | None = None,
        cost_model: str = "m2",
        use_filters: bool = True,
        max_rewritings: int = 32,
    ) -> None:
        """Create a mediator over *views*.

        Provide either the already-materialized ``view_database`` or a
        ``base_database`` to materialize from (closed world).  The
        ``cost_model`` is ``"m1"``, ``"m2"`` (default), or ``"m3"``.
        """
        self.views = (
            views if isinstance(views, ViewCatalog) else ViewCatalog(views)
        )
        if view_database is None:
            if base_database is None:
                raise ValueError(
                    "provide view_database or base_database to answer from"
                )
            view_database = materialize_views(self.views, base_database)
        self.view_database = view_database
        if cost_model not in {"m1", "m2", "m3"}:
            raise ValueError(f"unknown cost model {cost_model!r}")
        self.cost_model = cost_model
        self.use_filters = use_filters
        self.max_rewritings = max_rewritings
        self._plan_cache: dict[str, OptimizedPlan | None] = {}

    # -- public API ----------------------------------------------------------
    def answer(self, query: ConjunctiveQuery) -> MediatedAnswer:
        """Answer *query* from the views.

        Exact when an equivalent rewriting exists; otherwise the certain
        answers (inverse rules), flagged by ``method``.
        """
        plan = self.plan_for(query)
        if plan is not None:
            from .cost.intermediates import execute_plan

            execution = plan.execution or execute_plan(
                plan.plan, self.view_database
            )
            return MediatedAnswer(execution.answer, "rewriting", plan)
        rows = certain_answers(query, self.views, self.view_database)
        return MediatedAnswer(rows, "certain")

    def plan_for(self, query: ConjunctiveQuery) -> OptimizedPlan | None:
        """The cached cost-optimal plan for *query* (None if unrewritable)."""
        key = query.canonical_form()
        if key not in self._plan_cache:
            self._plan_cache[key] = self._optimize(query)
        return self._plan_cache[key]

    def explain(self, query: ConjunctiveQuery) -> str:
        """An EXPLAIN-style report for the query's chosen plan."""
        plan = self.plan_for(query)
        if plan is None:
            return (
                "no equivalent rewriting exists; the mediator would return "
                "certain answers via the inverse-rules algorithm"
            )
        return explain_plan(plan)

    def cache_info(self) -> dict[str, int]:
        """Cache statistics: total entries and unrewritable entries."""
        return {
            "entries": len(self._plan_cache),
            "unrewritable": sum(
                1 for plan in self._plan_cache.values() if plan is None
            ),
        }

    # -- internals ------------------------------------------------------------
    def _optimize(self, query: ConjunctiveQuery) -> OptimizedPlan | None:
        result = core_cover_star(
            query, self.views, max_rewritings=self.max_rewritings
        )
        if not result.rewritings:
            return None
        if self.cost_model == "m1":
            from .cost.optimizer import optimal_plan_m2

            smallest = min(result.rewritings, key=lambda r: len(r.body))
            return optimal_plan_m2(smallest, self.view_database)
        if self.cost_model == "m2":
            best = best_rewriting_m2(result.rewritings, self.view_database)
            assert best is not None
            if self.use_filters and result.filter_candidates:
                best = improve_with_filters(
                    best.rewriting,
                    result.filter_candidates,
                    self.view_database,
                )
            return best
        # m3: permutation search per rewriting with the Section 6.2 drops.
        candidates = [
            optimal_plan_m3(
                rewriting, query, self.views, self.view_database, "heuristic"
            )
            for rewriting in result.rewritings
            if len(rewriting.body) <= 8
        ]
        return min(candidates, key=lambda plan: plan.cost)
