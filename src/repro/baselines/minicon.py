"""The MiniCon algorithm (Pottinger & Levy, VLDB 2000; [20] in the paper).

MiniCon is the open-world baseline CoreCover is compared against in
Section 4.3.  It forms *MiniCon descriptions* (MCDs): for a view ``V`` and
a query ``Q``, an MCD maps a **minimal** closed set of query subgoals into
``V``'s body such that

* a distinguished query variable never maps to an existential view
  variable, and
* a query variable mapped to an existential view variable has *all* its
  query subgoals inside the MCD (property C2 — the same closure that
  appears as properties (2)/(3) of the paper's Definition 4.1).

Rewritings are then combinations of MCDs whose covered sets *partition*
the query subgoals (MCDs never overlap, unlike tuple-cores).

Two consequences reproduced here and exercised by the Example 4.2 tests:

* MiniCon's rewritings are only guaranteed to be **contained** in the
  query (open world); equivalence must be checked separately; and
* because each MCD is minimal, combinations can carry subgoals that are
  redundant *given the view definitions*, which MiniCon's own
  query-minimization post-pass cannot remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from ..containment.containment import is_contained_in, is_equivalent_to
from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery, fresh_factory_for
from ..datalog.substitution import Substitution
from ..datalog.terms import Constant, Term, Variable, is_variable
from ..views.expansion import expand
from ..views.view import View, ViewCatalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.context import PlannerContext


@dataclass(frozen=True)
class MCD:
    """A MiniCon description: a view usage covering some query subgoals."""

    view: View
    #: Indices of the covered query subgoals.
    covered: frozenset[int]
    #: The view literal this MCD contributes to a rewriting.
    literal: Atom

    def __str__(self) -> str:
        indices = ", ".join(str(i) for i in sorted(self.covered))
        return f"MCD({self.literal} covers {{{indices}}})"


def form_mcds(
    query: ConjunctiveQuery,
    views: ViewCatalog,
    *,
    context: "PlannerContext | None" = None,
) -> list[MCD]:
    """All MCDs of *query* over *views* (first phase of MiniCon)."""
    mcds: list[MCD] = []
    seen: set[tuple[str, frozenset[int], Atom]] = set()
    for view in views:
        if context is not None:
            context.checkpoint()  # cooperative cancellation per view
        for mcd in _view_mcds(query, view):
            key = (view.name, mcd.covered, mcd.literal)
            if key not in seen:
                seen.add(key)
                mcds.append(mcd)
    return mcds


def _view_mcds(query: ConjunctiveQuery, view: View) -> Iterator[MCD]:
    """MCDs for one view: start from each subgoal, close under C2."""
    view = _standardized_apart(view, query)
    distinguished = query.distinguished_variables()
    head_vars = set(view.head_variables)
    atoms_of_var: dict[Variable, set[int]] = {}
    for index, atom in enumerate(query.body):
        for variable in atom.variable_set():
            atoms_of_var.setdefault(variable, set()).add(index)

    def extend(
        pending: set[int],
        covered: frozenset[int],
        mapping: Substitution,
    ) -> Iterator[tuple[frozenset[int], Substitution]]:
        """Close the MCD under property C2, branching on atom placement."""
        if not pending:
            yield covered, mapping
            return
        index = min(pending)
        atom = query.body[index]
        for target in view.definition.body:
            extended = _unify_into_view(
                atom, target, mapping, distinguished, head_vars
            )
            if extended is None:
                continue
            new_pending = (pending - {index}) | _new_closure(
                atom, extended, head_vars, atoms_of_var, covered | {index}
            )
            yield from extend(
                new_pending - (covered | {index}),
                covered | {index},
                extended,
            )

    emitted: set[tuple[frozenset[int], Substitution]] = set()
    for start in range(len(query.body)):
        for covered, mapping in extend({start}, frozenset(), Substitution()):
            if start not in covered:
                continue
            key = (covered, mapping)
            if key in emitted:
                continue
            emitted.add(key)
            yield MCD(view, covered, _literal_for(view, mapping, query))


def _unify_into_view(
    atom: Atom,
    target: Atom,
    mapping: Substitution,
    distinguished: frozenset[Variable],
    head_vars: set[Variable],
) -> Optional[Substitution]:
    """Map a query atom onto a view body atom, respecting C2's clause (1).

    The substitution sends query variables to *view* terms.  A
    distinguished query variable must land on a view head variable.
    """
    if atom.predicate != target.predicate or atom.arity != target.arity:
        return None
    current = mapping
    for arg, view_term in zip(atom.args, target.args):
        if isinstance(arg, Constant):
            if isinstance(view_term, Constant):
                if arg != view_term:
                    return None
                continue
            # Constant meets a view variable: only a head variable can be
            # specialized to the constant when the view is used.
            if view_term not in head_vars:
                return None
            extended = current.extended(view_term, arg)  # view var -> const
            if extended is None:
                return None
            current = extended
            continue
        if arg in distinguished and (
            not is_variable(view_term) or view_term not in head_vars
        ):
            return None
        extended = current.extended(arg, view_term)
        if extended is None:
            return None
        current = extended
    return current


def _standardized_apart(view: View, query: ConjunctiveQuery) -> View:
    """Rename the view's variables so none collide with the query's."""
    factory = fresh_factory_for(query)
    renamed, _renaming = view.definition.rename_apart(factory)
    return View(renamed)


def _new_closure(
    atom: Atom,
    mapping: Substitution,
    head_vars: set[Variable],
    atoms_of_var: dict[Variable, set[int]],
    covered: frozenset[int] | set[int],
) -> set[int]:
    """Query atoms that must join the MCD because of existential images.

    The view is standardized apart, so a variable image distinct from the
    view's head variables is necessarily an existential view variable.
    """
    required: set[int] = set()
    for variable in atom.variable_set():
        image = mapping.apply_term(variable)
        if is_variable(image) and image not in head_vars:
            required |= atoms_of_var[variable] - set(covered)
    return required


def _literal_for(
    view: View, mapping: Substitution, query: ConjunctiveQuery
) -> Atom:
    """The view literal an MCD contributes: head vars pulled back to Q-terms.

    The MCD's substitution maps query variables to view head/existential
    variables, and view head variables to constants (when a query constant
    met a head position).  Inverting the head-variable part yields the
    literal's arguments; head variables with no image become fresh
    variables (deterministically named per view).
    """
    head_var_set = set(view.head_variables)
    inverse: dict[Variable, Term] = {}
    for source, image in mapping.items():
        if source in head_var_set and isinstance(image, Constant):
            inverse.setdefault(source, image)
        elif is_variable(image) and image in head_var_set:
            # Two query vars mapping to one head var would require a head
            # homomorphism equating them; keep the first (the rewriting's
            # expansion check rejects bad combinations).
            inverse.setdefault(image, source)
    args: list[Term] = []
    for position, head_var in enumerate(view.head_variables):
        bound = inverse.get(head_var)
        if bound is None:
            args.append(Variable(f"NV_{view.name}_{position}"))
        else:
            args.append(bound)
    return Atom(view.name, tuple(args))


@dataclass(frozen=True)
class MiniConResult:
    """MiniCon's output: MCDs, contained rewritings, and the equivalent ones."""

    mcds: tuple[MCD, ...]
    contained_rewritings: tuple[ConjunctiveQuery, ...]
    equivalent_rewritings: tuple[ConjunctiveQuery, ...]


def minicon(
    query: ConjunctiveQuery,
    views: ViewCatalog,
    require_equivalent: bool = False,
    max_rewritings: int | None = None,
) -> MiniConResult:
    """Run MiniCon: form MCDs, combine partitions, optionally filter.

    With ``require_equivalent=True`` the contained rewritings are filtered
    by the closed-world equivalence test, making the output comparable to
    CoreCover's (Section 4.3 comparison).

    Thin shim over ``plan(query, views, backend="minicon")``.
    """
    from ..planner.registry import plan

    return plan(
        query,
        views,
        backend="minicon",
        require_equivalent=require_equivalent,
        max_rewritings=max_rewritings,
    ).details


def run_minicon(
    query: ConjunctiveQuery,
    views: ViewCatalog,
    *,
    require_equivalent: bool = False,
    max_rewritings: int | None = None,
    context: "PlannerContext | None" = None,
) -> MiniConResult:
    """The MiniCon algorithm proper (registry backend entry point)."""
    contained_in = (
        context.is_contained_in if context is not None else is_contained_in
    )
    equivalent_to = (
        context.is_equivalent_to if context is not None else is_equivalent_to
    )
    mcds = form_mcds(query, views, context=context)
    universe = frozenset(range(len(query.body)))
    checkpoint = (
        context.meter.checkpoint
        if context is not None and context.meter is not None
        else None
    )
    combinations = _partitions(
        universe, mcds, max_rewritings, checkpoint=checkpoint
    )
    contained: list[ConjunctiveQuery] = []
    equivalent: list[ConjunctiveQuery] = []
    seen: set[str] = set()
    for combo in combinations:
        if context is not None:
            context.checkpoint()  # cooperative cancellation per combination
        body: list[Atom] = []
        for mcd in combo:
            if mcd.literal not in body:
                body.append(mcd.literal)
        rewriting = ConjunctiveQuery(query.head, tuple(body))
        if not rewriting.is_safe():
            continue
        marker = rewriting.canonical_form()
        if marker in seen:
            continue
        seen.add(marker)
        expansion = expand(rewriting, views)
        if not contained_in(expansion, query):
            continue
        contained.append(rewriting)
        if equivalent_to(expansion, query):
            equivalent.append(rewriting)
            if context is not None:
                context.record_rewriting(rewriting, certified=True)
        elif context is not None:
            # MiniCon only guarantees containment (open world); without
            # the equivalence proof the partial stays uncertified.
            context.record_rewriting(rewriting, certified=False)
    if require_equivalent:
        contained = [r for r in contained if r in equivalent]
    return MiniConResult(tuple(mcds), tuple(contained), tuple(equivalent))


def _partitions(
    universe: frozenset[int],
    mcds: Sequence[MCD],
    max_results: int | None,
    *,
    checkpoint: "Callable[[], None] | None" = None,
) -> list[tuple[MCD, ...]]:
    """All ways to partition *universe* into pairwise-disjoint MCDs."""
    results: list[tuple[MCD, ...]] = []

    def branch(uncovered: frozenset[int], chosen: tuple[MCD, ...]) -> None:
        if max_results is not None and len(results) >= max_results:
            return
        if checkpoint is not None:
            checkpoint()
        if not uncovered:
            results.append(chosen)
            return
        pivot = min(uncovered)
        for mcd in mcds:
            if pivot in mcd.covered and mcd.covered <= uncovered:
                branch(uncovered - mcd.covered, chosen + (mcd,))

    branch(universe, ())
    return results
