"""The Bucket algorithm (Levy et al. 1996; [12, 17] in the paper).

The earliest practical rewriting algorithm: for every query subgoal build
a *bucket* of view literals whose definitions could supply that subgoal,
then try every combination of one literal per bucket, checking each
candidate rewriting by an expensive containment test.

Compared with MiniCon and CoreCover, the bucket algorithm ignores how a
view's variables interact across subgoals, so its Cartesian product is
much larger and most candidates fail the containment check — which is
exactly why the paper's approaches exist.  It serves here as the second
baseline for the scalability benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import TYPE_CHECKING, Iterator, Optional

from ..containment.containment import is_contained_in, is_equivalent_to
from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery, fresh_factory_for
from ..datalog.terms import Constant, Term, Variable, is_variable
from ..views.expansion import expand
from ..views.view import View, ViewCatalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.context import PlannerContext


@dataclass(frozen=True)
class Bucket:
    """The candidate view literals for one query subgoal."""

    subgoal_index: int
    literals: tuple[Atom, ...]


@dataclass(frozen=True)
class BucketResult:
    """Buckets, the number of combinations tried, and the rewritings found."""

    buckets: tuple[Bucket, ...]
    combinations_tried: int
    contained_rewritings: tuple[ConjunctiveQuery, ...]
    equivalent_rewritings: tuple[ConjunctiveQuery, ...]


def build_buckets(query: ConjunctiveQuery, views: ViewCatalog) -> list[Bucket]:
    """Phase one: a bucket of candidate view literals per query subgoal."""
    buckets = []
    for index, subgoal in enumerate(query.body):
        literals: list[Atom] = []
        for view in views:
            for literal in _bucket_entries(subgoal, view, query):
                if literal not in literals:
                    literals.append(literal)
        buckets.append(Bucket(index, tuple(literals)))
    return buckets


def _bucket_entries(
    subgoal: Atom, view: View, query: ConjunctiveQuery
) -> Iterator[Atom]:
    """View literals that can supply *subgoal*.

    A view body atom matching the subgoal yields a literal whose head
    arguments are instantiated by the unifier; distinguished query
    variables must land on view head variables (otherwise the value could
    not be returned).
    """
    factory = fresh_factory_for(query)
    definition, _renaming = view.definition.rename_apart(factory)
    head_vars = tuple(definition.head.args)
    head_var_set = set(head_vars)
    distinguished = query.distinguished_variables()
    for body_atom in definition.body:
        binding = _unify(subgoal, body_atom, distinguished, head_var_set)
        if binding is None:
            continue
        args: list[Term] = []
        for position, head_var in enumerate(head_vars):
            image = binding.get(head_var)
            if image is None:
                args.append(Variable(f"NB_{view.name}_{position}"))
            else:
                args.append(image)
        yield Atom(view.name, tuple(args))


def _unify(
    subgoal: Atom,
    body_atom: Atom,
    distinguished: frozenset[Variable],
    head_vars: set[Variable],
) -> Optional[dict[Variable, Term]]:
    """Unify a query subgoal with a view body atom, view-side bindings."""
    if (
        subgoal.predicate != body_atom.predicate
        or subgoal.arity != body_atom.arity
    ):
        return None
    binding: dict[Variable, Term] = {}
    for query_term, view_term in zip(subgoal.args, body_atom.args):
        if isinstance(view_term, Constant):
            if isinstance(query_term, Constant) and query_term != view_term:
                return None
            if is_variable(query_term) and query_term in distinguished:
                # The view pins this position to a constant; the literal
                # cannot return the distinguished variable's value...
                # unless the query variable is also equated elsewhere, which
                # the final containment check would catch; be conservative.
                return None
            continue
        # view_term is a view variable.
        if is_variable(query_term) and query_term in distinguished:
            if view_term not in head_vars:
                return None
        bound = binding.get(view_term)
        if bound is None:
            binding[view_term] = query_term
        elif bound != query_term:
            return None
    return binding


def bucket_algorithm(
    query: ConjunctiveQuery,
    views: ViewCatalog,
    max_combinations: int | None = 200_000,
) -> BucketResult:
    """Run the bucket algorithm end to end.

    Candidates are deduplicated after merging identical literals; each is
    kept when its expansion is contained in the query, and marked
    equivalent when the closed-world test also succeeds.

    Thin shim over ``plan(query, views, backend="bucket")``.
    """
    from ..planner.registry import plan

    return plan(
        query, views, backend="bucket", max_combinations=max_combinations
    ).details


def run_bucket_algorithm(
    query: ConjunctiveQuery,
    views: ViewCatalog,
    *,
    max_combinations: int | None = 200_000,
    context: "PlannerContext | None" = None,
) -> BucketResult:
    """The bucket algorithm proper (registry backend entry point)."""
    contained_in = (
        context.is_contained_in if context is not None else is_contained_in
    )
    equivalent_to = (
        context.is_equivalent_to if context is not None else is_equivalent_to
    )
    buckets = build_buckets(query, views)
    if any(not bucket.literals for bucket in buckets):
        return BucketResult(tuple(buckets), 0, (), ())

    contained: list[ConjunctiveQuery] = []
    equivalent: list[ConjunctiveQuery] = []
    seen: set[str] = set()
    tried = 0
    for combo in product(*(bucket.literals for bucket in buckets)):
        tried += 1
        if context is not None:
            context.checkpoint()  # cooperative cancellation per combination
        if max_combinations is not None and tried > max_combinations:
            break
        body: list[Atom] = []
        for literal in combo:
            if literal not in body:
                body.append(literal)
        candidate = ConjunctiveQuery(query.head, tuple(body))
        marker = candidate.canonical_form()
        if marker in seen:
            continue
        seen.add(marker)
        if not candidate.is_safe():
            continue
        expansion = expand(candidate, views)
        if not contained_in(expansion, query):
            continue
        contained.append(candidate)
        if equivalent_to(expansion, query):
            equivalent.append(candidate)
            if context is not None:
                context.record_rewriting(candidate, certified=True)
        elif context is not None:
            # Contained but not proven equivalent — usable only as a
            # maximally-contained partial answer, so left uncertified.
            context.record_rewriting(candidate, certified=False)
    return BucketResult(
        tuple(buckets), tried, tuple(contained), tuple(equivalent)
    )
