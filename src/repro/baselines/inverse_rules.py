"""The inverse-rules algorithm (Duschka & Genesereth [9]; Qian [21]).

The third family of rewriting algorithms cited in the paper's related
work.  Each view definition ``v(X̄) :- g_1, …, g_k`` is *inverted* into
one rule per body subgoal::

    g_j(… f_{v,Z}(X̄) …)  :-  v(X̄)

where every existential variable ``Z`` of the view is replaced by a
Skolem function of the view's head variables.  Evaluating the inverse
rules over a view instance reconstructs a least-committal base database
(Skolem values standing for the unknown constants); evaluating the query
over it and discarding answers containing Skolem values yields the
*certain answers* — the same answers a maximally-contained rewriting
computes.

Under the paper's closed-world assumption, when the query has an
equivalent rewriting the certain answers coincide with the query's answer
on the real base database, which the tests verify end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.context import PlannerContext

from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery
from ..datalog.terms import Constant, Variable
from ..engine.database import Database
from ..engine.evaluate import evaluate
from ..views.view import View, ViewCatalog


@dataclass(frozen=True, slots=True)
class SkolemValue:
    """A Skolem term ``f_{view,variable}(args)`` at the data level.

    Skolem values are ordinary (hashable) domain values to the engine;
    they only receive special treatment when answers are filtered.
    """

    view: str
    variable: str
    args: tuple[object, ...]

    def __str__(self) -> str:
        rendered = ", ".join(map(str, self.args))
        return f"f[{self.view}.{self.variable}]({rendered})"


def contains_skolem(row: Sequence[object]) -> bool:
    """Whether a tuple mentions any Skolem value."""
    return any(isinstance(value, SkolemValue) for value in row)


@dataclass(frozen=True)
class InverseRule:
    """One inverted view subgoal: ``head :- view(head_variables)``.

    ``head`` is a base-relation atom over the view's head variables and
    existential variables; the latter are instantiated as Skolem values
    during :func:`derive_base_facts`.
    """

    view: View
    head: Atom

    def __str__(self) -> str:
        args = ", ".join(str(v) for v in self.view.head_variables)
        return f"{self.head} :- {self.view.name}({args})"


def invert_views(
    views: ViewCatalog | Iterable[View],
    *,
    context: "PlannerContext | None" = None,
) -> list[InverseRule]:
    """All inverse rules of a set of views."""
    rules = []
    for view in views:
        if context is not None:
            context.checkpoint()  # cooperative cancellation per view
        for atom in view.definition.body:
            if atom.is_comparison:
                continue  # comparisons constrain, they do not produce facts
            rules.append(InverseRule(view, atom))
    return rules


def derive_base_facts(
    rules: Sequence[InverseRule], view_database: Database
) -> Database:
    """Apply the inverse rules to a view instance.

    Every view tuple fires each of its view's inverse rules once; head
    positions holding existential variables become Skolem values keyed by
    the view name, the variable name, and the full view tuple.
    """
    base = Database()
    by_view: dict[str, list[InverseRule]] = {}
    for rule in rules:
        by_view.setdefault(rule.view.name, []).append(rule)

    for view_name, view_rules in by_view.items():
        if not view_database.has_relation(view_name):
            continue
        relation = view_database.relation(view_name)
        head_vars = view_rules[0].view.head_variables
        for row in relation:
            binding: dict[Variable, object] = dict(zip(head_vars, row))
            for rule in view_rules:
                values = []
                for arg in rule.head.args:
                    if isinstance(arg, Constant):
                        values.append(arg.value)
                    elif arg in binding:
                        values.append(binding[arg])
                    else:
                        values.append(
                            SkolemValue(view_name, arg.name, tuple(row))
                        )
                base.add_fact(rule.head.predicate, tuple(values))
    return base


def certain_answers(
    query: ConjunctiveQuery,
    views: ViewCatalog | Iterable[View],
    view_database: Database,
) -> frozenset[tuple[object, ...]]:
    """The certain answers of *query* given only the view instance.

    Equivalent to evaluating the maximally-contained rewriting: derive
    the Skolemized base database, evaluate the query, and keep only the
    Skolem-free answers.
    """
    rules = invert_views(views)
    base = derive_base_facts(rules, view_database)
    return frozenset(
        row for row in evaluate(query, base) if not contains_skolem(row)
    )
