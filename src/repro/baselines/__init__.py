"""Baseline rewriting algorithms: Bucket, MiniCon, and inverse rules."""

from .bucket import (
    Bucket,
    BucketResult,
    bucket_algorithm,
    build_buckets,
    run_bucket_algorithm,
)
from .inverse_rules import (
    InverseRule,
    SkolemValue,
    certain_answers,
    contains_skolem,
    derive_base_facts,
    invert_views,
)
from .minicon import MCD, MiniConResult, form_mcds, minicon, run_minicon

__all__ = [
    "Bucket",
    "BucketResult",
    "InverseRule",
    "MCD",
    "MiniConResult",
    "SkolemValue",
    "bucket_algorithm",
    "build_buckets",
    "certain_answers",
    "contains_skolem",
    "derive_base_facts",
    "form_mcds",
    "invert_views",
    "minicon",
    "run_bucket_algorithm",
    "run_minicon",
]
