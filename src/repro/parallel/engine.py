"""The process-pool planning engine (``repro batch --workers N``).

:class:`ParallelPlanningEngine` fans a batch of
:class:`~repro.service.executor.PlanRequest` objects across a
``multiprocessing`` pool and yields
:class:`~repro.service.executor.ExecutionOutcome` objects **in input
order** — byte-identical text output to the serial path, whatever the
completion order.

Design points:

* **Dispatch** — every task is submitted up front (``apply_async``) and
  results are collected in order; workers pull tasks as they free up,
  so input order never serializes execution.
* **Isolation** — a worker that dies (OOM-kill, segfault, chaos
  ``ExitFault``) loses only the task it was running.  Its result never
  arrives, the per-task timeout (request deadline + grace) expires, and
  that one request yields a ``failed`` outcome carrying
  :class:`~repro.errors.WorkerCrashError`; the pool replaces the worker
  and every other request proceeds.  A request with no deadline and no
  ``default_task_timeout`` waits indefinitely — give batch requests
  deadlines.
* **Same semantics as serial** — input errors re-raise in the parent
  with their taxonomy exit codes; per-worker breaker deltas merge into
  a parent :class:`BreakerScoreboard`; warm-context pool hits are
  counted.  When ``workers`` resolves to 1 (or the workload cannot be
  pickled) the engine degrades to the in-process serial path —
  ``fell_back_to_serial``/``fallback_reason`` say so.
* **plan_map** — the experiment harness's lighter fan-out: bare
  ``plan()`` calls, no service layer, results in input order.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import WorkerCrashError
from ..service.executor import ExecutionOutcome, PlanRequest
from ..service.policy import ServicePolicy
from ..testing.faults import Fault
from .worker import (
    PlanTask,
    PlanTaskResult,
    WorkerConfig,
    WorkerResult,
    WorkerState,
    WorkerTask,
    _init_plan_worker,
    _init_worker,
    _run_task,
    crash_outcome,
    run_plan_task,
)

__all__ = [
    "BreakerScoreboard",
    "ParallelPlanningEngine",
    "ParallelPolicy",
    "plan_map",
]


@dataclass(frozen=True)
class ParallelPolicy:
    """How the engine schedules work across processes."""

    #: Worker processes; ``None`` or ``0`` = ``os.cpu_count()``.
    workers: int | None = None
    #: Warm planner-context pool entries per worker.
    pool_size: int = 4
    #: Extra seconds past a request's deadline before the parent
    #: declares the worker dead.
    task_grace_seconds: float = 5.0
    #: Timeout for requests without a deadline (``None`` = wait forever).
    default_task_timeout: float | None = None
    #: Degrade to the in-process path for 1 worker / unpicklable work.
    serial_fallback: bool = True


class BreakerScoreboard:
    """Per-backend breaker totals merged from worker deltas."""

    def __init__(self) -> None:
        self.successes: dict[str, int] = {}
        self.failures: dict[str, int] = {}

    def merge(self, deltas: Mapping[str, tuple[int, int]]) -> None:
        """Add one task's ``(successes, failures)`` deltas."""
        for name, (successes, failures) in deltas.items():
            self.successes[name] = self.successes.get(name, 0) + successes
            self.failures[name] = self.failures.get(name, 0) + failures

    def summary(self) -> dict[str, dict[str, int]]:
        """``{backend: {successes, failures}}``, backends sorted."""
        names = sorted(set(self.successes) | set(self.failures))
        return {
            name: {
                "successes": self.successes.get(name, 0),
                "failures": self.failures.get(name, 0),
            }
            for name in names
        }


class ParallelPlanningEngine:
    """Batch planning over a process pool, outcomes in input order."""

    def __init__(
        self,
        policy: ServicePolicy | None = None,
        *,
        parallel: ParallelPolicy | None = None,
        cache_dir: str | None = None,
        cache_ttl: float | None = None,
        strict_cache: bool = False,
        profile: bool = False,
    ) -> None:
        self.parallel = parallel if parallel is not None else ParallelPolicy()
        self.config = WorkerConfig(
            policy=policy if policy is not None else ServicePolicy(),
            cache_dir=cache_dir,
            cache_ttl=cache_ttl,
            strict_cache=strict_cache,
            profile=profile,
            pool_size=self.parallel.pool_size,
        )
        self.scoreboard = BreakerScoreboard()
        self.fell_back_to_serial = False
        self.fallback_reason: str | None = None
        self.pool_hits = 0
        self.pool_delta_hits = 0
        self.pool_misses = 0

    def resolve_workers(self) -> int:
        """The effective worker count (``None``/``0`` = CPU count)."""
        workers = self.parallel.workers
        if workers is None or workers <= 0:
            workers = os.cpu_count() or 1
        return max(1, workers)

    def run(
        self,
        requests: Iterable[PlanRequest],
        *,
        chaos: Mapping[int, tuple[Fault, ...]] | None = None,
    ) -> Iterator[ExecutionOutcome]:
        """Yield one outcome per request, in input order.

        *chaos* maps input indexes to faults activated around just that
        task, worker-side (deterministic kill tests).  Note the intake
        difference from the serial CLI loop: all requests are
        materialized before the first outcome is yielded.
        """
        items = list(requests)
        faults = dict(chaos or {})
        workers = self.resolve_workers()
        if workers <= 1 and self.parallel.serial_fallback:
            self.fell_back_to_serial = True
            self.fallback_reason = "workers=1"
            yield from self._run_serial(items, faults)
            return
        try:
            pickle.dumps(self.config)
            if items:
                pickle.dumps(items[0])
        except Exception as exc:
            if not self.parallel.serial_fallback:
                raise
            self.fell_back_to_serial = True
            self.fallback_reason = (
                f"workload not picklable: {type(exc).__name__}: {exc}"
            )
            yield from self._run_serial(items, faults)
            return
        yield from self._run_pool(items, workers, faults)

    # -- execution paths ----------------------------------------------------
    def _run_serial(
        self,
        items: Sequence[PlanRequest],
        faults: Mapping[int, tuple[Fault, ...]],
    ) -> Iterator[ExecutionOutcome]:
        state = WorkerState(self.config)
        for index, request in enumerate(items):
            task = WorkerTask(
                index=index,
                request=request,
                chaos=tuple(faults.get(index, ())),
            )
            yield self._admit(state.run(task))

    def _run_pool(
        self,
        items: Sequence[PlanRequest],
        workers: int,
        faults: Mapping[int, tuple[Fault, ...]],
    ) -> Iterator[ExecutionOutcome]:
        ctx = multiprocessing.get_context()
        tasks = [
            WorkerTask(
                index=index,
                request=request,
                chaos=tuple(faults.get(index, ())),
            )
            for index, request in enumerate(items)
        ]
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(self.config,),
        ) as pool:
            pending = [pool.apply_async(_run_task, (task,)) for task in tasks]
            for task, handle in zip(tasks, pending):
                timeout = self._task_timeout(task.request)
                try:
                    result: WorkerResult = handle.get(timeout)
                except multiprocessing.TimeoutError:
                    waited = "forever" if timeout is None else f"{timeout:.3f}s"
                    yield crash_outcome(
                        task.request,
                        WorkerCrashError(
                            f"worker processing request {task.request.id!r} "
                            f"did not respond within {waited} (crashed or "
                            "hung); only this request fails",
                            request_id=task.request.id,
                        ),
                    )
                    continue
                yield self._admit(result)

    def _task_timeout(self, request: PlanRequest) -> float | None:
        budget = request.budget
        if budget is not None and budget.deadline_seconds is not None:
            return budget.deadline_seconds + self.parallel.task_grace_seconds
        return self.parallel.default_task_timeout

    def _admit(self, result: WorkerResult) -> ExecutionOutcome:
        """Merge one worker result into engine state, or re-raise."""
        if result.error is not None:
            raise result.error
        self.scoreboard.merge(result.breaker_deltas)
        if result.fingerprint:
            if result.pool_event == "delta":
                self.pool_delta_hits += 1
            elif result.pool_hit:
                self.pool_hits += 1
            else:
                self.pool_misses += 1
        assert result.outcome is not None  # error/outcome is exhaustive
        return result.outcome


def plan_map(
    tasks: Sequence[PlanTask],
    *,
    workers: int | None = None,
    pool_size: int = 4,
) -> list[PlanTaskResult]:
    """Run bare plan tasks across a pool, results in input order.

    The experiment harness's fan-out: no service layer, no retries —
    exceptions propagate.  ``workers`` of ``None``/``0`` means
    ``os.cpu_count()``; 1 (or an unpicklable workload) runs in-process
    with a fresh warm pool.
    """
    items = list(tasks)
    count = workers if workers and workers > 0 else (os.cpu_count() or 1)
    if count > 1 and items:
        try:
            pickle.dumps(items[0])
        except Exception:
            count = 1
    if count <= 1 or not items:
        _init_plan_worker(pool_size)
        return [run_plan_task(task) for task in items]
    ctx = multiprocessing.get_context()
    with ctx.Pool(
        processes=count,
        initializer=_init_plan_worker,
        initargs=(pool_size,),
    ) as pool:
        return pool.map(run_plan_task, items)
