"""Worker-side state for the parallel planning engine.

Each pool worker holds one :class:`WorkerState`: a resilient executor
(whose circuit breakers span every request the worker serves, matching
the serial executor's semantics) plus a warm
:class:`~repro.parallel.pool.PlannerContextPool` so repeated requests
against the same catalog reuse memoized containment work.

Everything crossing the process boundary is a small picklable
dataclass:

* :class:`WorkerTask` in — the request, its input-order index, and any
  chaos faults to activate for just this task (deterministic kill
  tests attach the fault to the poisoned task, so replacement workers
  are unaffected).
* :class:`WorkerResult` out — the outcome, breaker-counter deltas for
  the parent's scoreboard, context-pool hit/miss, and the planner-stats
  delta.  Input errors (:class:`~repro.errors.ReproError`) ride back as
  ``error`` so the parent re-raises them with the same taxonomy
  exit-code semantics as the serial path; any other worker-side
  exception degrades to a ``failed`` outcome for that request alone.

The module also hosts the lighter *plan-map* path
(:class:`PlanTask`/:func:`run_plan_task`) the experiment harness fans
out over: one bare ``plan()`` call per task, same warm context pool,
no service layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from ..core.corecover import CoreCoverStats
from ..datalog.query import ConjunctiveQuery
from ..errors import ReproError, ServiceError, WorkerCrashError
from ..planner.context import PlannerContext, PlannerStats
from ..service.cache import PlanCache
from ..service.executor import (
    BackendFailure,
    ExecutionOutcome,
    PlanRequest,
    ResilientExecutor,
)
from ..service.policy import ServicePolicy
from ..testing.faults import Fault, fire, inject
from ..views.view import ViewCatalog
from .pool import PlannerContextPool, context_fingerprint

__all__ = [
    "PlanTask",
    "PlanTaskResult",
    "WorkerConfig",
    "WorkerResult",
    "WorkerState",
    "WorkerTask",
    "crash_outcome",
    "run_plan_task",
]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to build its executor (picklable)."""

    policy: ServicePolicy = field(default_factory=ServicePolicy)
    cache_dir: str | None = None
    cache_ttl: float | None = None
    strict_cache: bool = False
    profile: bool = False
    pool_size: int = 4


@dataclass(frozen=True)
class WorkerTask:
    """One request dispatched to a worker, tagged with its input order."""

    index: int
    request: PlanRequest
    #: Faults activated around just this task (chaos tests only).
    chaos: tuple[Fault, ...] = ()


@dataclass(frozen=True)
class WorkerResult:
    """What one task sends back across the process boundary."""

    index: int
    outcome: ExecutionOutcome | None = None
    #: An input error the parent must re-raise (serial semantics).
    error: ReproError | None = None
    #: Per-backend ``(successes, failures)`` delta for this task.
    breaker_deltas: Mapping[str, tuple[int, int]] = field(
        default_factory=dict
    )
    fingerprint: str = ""
    pool_hit: bool = False
    #: ``"exact"`` (same catalog root), ``"delta"`` (warm context
    #: upgraded across a small catalog delta), or ``"miss"``; empty for
    #: error results.
    pool_event: str = ""
    #: Planner-stats delta of this task on its (possibly warm) context.
    stats: PlannerStats | None = None


def crash_outcome(
    request: PlanRequest, error: ServiceError
) -> ExecutionOutcome:
    """A ``failed`` outcome for a request its worker could not finish.

    Used for a worker that died or hung mid-plan
    (:class:`~repro.errors.WorkerCrashError`) and for in-flight requests
    aborted by a drain deadline
    (:class:`~repro.errors.ShuttingDownError`).
    """
    return ExecutionOutcome(
        status="failed",
        request_id=request.id,
        attempts=0,
        backend_used=None,
        degraded=False,
        cache="off",
        rewritings=(),
        plan_status=None,
        breakers={},
        failures=(
            BackendFailure(
                backend="worker",
                error=type(error).__name__,
                message=str(error),
                skipped=True,
            ),
        ),
        error=error,
    )


class WorkerState:
    """One worker's executor plus its warm planner-context pool."""

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.pool = PlannerContextPool(config.pool_size)
        cache: PlanCache | None = None
        if config.cache_dir is not None:
            cache = PlanCache(
                config.cache_dir,
                ttl_seconds=config.cache_ttl,
                strict=config.strict_cache,
            )
        self._active_context: PlannerContext | None = None
        self.executor = ResilientExecutor(
            config.policy,
            cache=cache,
            profile=config.profile,
            context_factory=self._current_context,
        )

    def _current_context(self) -> PlannerContext:
        """The pooled context for the in-flight task (fresh otherwise)."""
        if self._active_context is not None:
            return self._active_context
        return PlannerContext()

    def run(self, task: WorkerTask) -> WorkerResult:
        """Serve one task, activating its chaos faults if any."""
        if task.chaos:
            with inject(*task.chaos):
                return self._run(task)
        return self._run(task)

    def _run(self, task: WorkerTask) -> WorkerResult:
        request = task.request
        try:
            fire("worker_dispatch")
            context, pool_event = self.pool.acquire_catalog(
                request.views, {"chain": list(self.executor.chain)}
            )
            fingerprint = request.views.content_root()
            self._active_context = context
            before = context.snapshot()
            totals_before = self.executor.breaker_totals()
            outcome = self.executor.execute(request)
            deltas = {
                name: (
                    successes - totals_before[name][0],
                    failures - totals_before[name][1],
                )
                for name, (successes, failures) in (
                    self.executor.breaker_totals().items()
                )
            }
            return WorkerResult(
                index=task.index,
                outcome=outcome,
                breaker_deltas=deltas,
                fingerprint=fingerprint,
                pool_hit=pool_event in ("exact", "delta"),
                pool_event=pool_event,
                stats=context.snapshot().since(before),
            )
        except ReproError as exc:
            # The request itself is bad — identical on every backend and
            # every worker.  Ship it back for the parent to re-raise so
            # the batch aborts with the same taxonomy exit code as the
            # serial path.
            return WorkerResult(index=task.index, error=exc)
        except Exception as exc:
            return WorkerResult(
                index=task.index,
                outcome=crash_outcome(
                    request,
                    WorkerCrashError(
                        f"worker failed while planning request "
                        f"{request.id!r}: {type(exc).__name__}: {exc}",
                        request_id=request.id,
                    ),
                ),
            )
        finally:
            self._active_context = None


#: The per-process state a pool initializer installs (batch path).
_STATE: WorkerState | None = None


def _init_worker(config: WorkerConfig) -> None:
    global _STATE
    _STATE = WorkerState(config)


def _run_task(task: WorkerTask) -> WorkerResult:
    assert _STATE is not None  # the pool initializer always ran
    return _STATE.run(task)


# -- the plan-map path (experiment harness) ---------------------------------


@dataclass(frozen=True)
class PlanTask:
    """One bare ``plan()`` call for :func:`repro.parallel.plan_map`."""

    query: ConjunctiveQuery
    views: ViewCatalog
    backend: str = "corecover"
    options: Mapping = field(default_factory=dict)
    #: ``None`` = a private context per call (the harness's legacy
    #: behaviour); ``True``/``False`` = a pooled shared context with
    #: memoization on/off.
    caching: bool | None = None


@dataclass(frozen=True)
class PlanTaskResult:
    """The picklable summary a plan task returns."""

    rewritings: tuple[str, ...]
    stats: CoreCoverStats | None
    #: Worker-side wall time of the ``plan()`` call.
    elapsed_seconds: float
    minimum_subgoals: int | None

    @property
    def has_rewriting(self) -> bool:
        return bool(self.rewritings)


#: The per-process warm pool for plan tasks (lazy for the serial path).
_PLAN_STATE: PlannerContextPool | None = None
_PLAN_POOL_SIZE = 4


def _init_plan_worker(pool_size: int) -> None:
    global _PLAN_STATE, _PLAN_POOL_SIZE
    _PLAN_POOL_SIZE = pool_size
    _PLAN_STATE = PlannerContextPool(pool_size)


def _plan_pool() -> PlannerContextPool:
    global _PLAN_STATE
    if _PLAN_STATE is None:
        _PLAN_STATE = PlannerContextPool(_PLAN_POOL_SIZE)
    return _PLAN_STATE


def run_plan_task(task: PlanTask) -> PlanTaskResult:
    """Execute one plan task against the worker's warm context pool."""
    from ..planner.registry import plan

    fire("worker_dispatch")
    context: PlannerContext | None = None
    if task.caching is not None:
        caching = bool(task.caching)
        fingerprint = context_fingerprint(
            task.views, {"backend": task.backend, "caching": caching}
        )
        context, _ = _plan_pool().acquire(
            fingerprint,
            factory=lambda: PlannerContext(caching=caching),
        )
    started = time.perf_counter()
    result = plan(
        task.query,
        task.views,
        backend=task.backend,
        context=context,
        **dict(task.options),
    )
    elapsed = time.perf_counter() - started
    details = result.details
    stats = getattr(details, "stats", None)
    minimum = None
    if details is not None and hasattr(details, "minimum_subgoals"):
        minimum = details.minimum_subgoals()
    return PlanTaskResult(
        rewritings=tuple(str(r) for r in result.rewritings),
        stats=stats if isinstance(stats, CoreCoverStats) else None,
        elapsed_seconds=elapsed,
        minimum_subgoals=minimum,
    )
