"""Long-lived supervised worker pool for the :mod:`repro.serve` daemon.

The batch engine (:class:`~repro.parallel.engine.ParallelPlanningEngine`)
materializes a finite workload, fans it over a ``multiprocessing.Pool``
and tears the pool down; a resident daemon needs the opposite shape — a
pool that outlives any one request and *supervises* its workers:

* **Heartbeats** — each worker runs a daemon thread stamping a shared
  ``Value('d')`` with ``time.monotonic()`` (system-wide monotonic on
  Linux, so parent and child readings compare directly).  A worker whose
  heartbeat goes stale past ``heartbeat_grace`` — SIGSTOPped, wedged in
  native code, or silently gone — is killed and replaced even when no
  request is in flight to notice.
* **Crash isolation** — one dispatcher thread per worker slot walks a
  shared ticket queue.  While a request is in flight the dispatcher
  polls the worker pipe in short slices, watching the task deadline,
  process liveness, and the heartbeat; death or a hang resolves *that
  request only* with a structured
  :class:`~repro.errors.WorkerCrashError` outcome and respawns the
  worker.  A worker that died idle (between tasks) never fails a
  request: dispatch retries once on the fresh replacement.
* **Scoreboard merge on restart** — workers report per-task breaker
  *deltas* (:attr:`WorkerResult.breaker_deltas`), so the parent
  scoreboard accumulates exactly the work each incarnation actually
  did; a replacement worker starts from zeroed breakers and cannot
  double-count its predecessor's totals.
* **Recycling** — after ``recycle_after_requests`` served, or when the
  worker's resident set (``/proc/<pid>/statm``) crosses
  ``max_rss_bytes``, the worker is retired gracefully between requests
  and replaced — bounding leak accumulation over a long residency.
* **Drain-aware shutdown** — :meth:`SupervisedWorkerPool.shutdown`
  fires the ``serve_drain`` injection point at each phase transition,
  waits for in-flight work up to a drain deadline, and past the
  deadline resolves every leftover request with a structured
  :class:`~repro.errors.ShuttingDownError` outcome — a request is
  *never* silently dropped.

Tasks are pickled by the **submitter**, in the submitter's thread, so a
catalog registered concurrently with a ``submit`` can never race the
snapshot a task carries across the process boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import signal
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any

from ..errors import ServiceError, ShuttingDownError, WorkerCrashError
from ..testing.faults import fire
from .engine import BreakerScoreboard
from .worker import (
    WorkerConfig,
    WorkerResult,
    WorkerState,
    WorkerTask,
    crash_outcome,
)

__all__ = ["SupervisedWorkerPool", "SupervisorPolicy"]

#: Retire request: an empty frame tells the worker loop to exit cleanly.
_RETIRE = b""


@dataclass(frozen=True)
class SupervisorPolicy:
    """How the supervised pool sizes, watches, and recycles workers."""

    #: Worker processes (long-lived; each holds a warm context pool).
    workers: int = 2
    #: Warm planner-context pool entries per worker.
    pool_size: int = 4
    #: Seconds between heartbeat stamps (worker) and sweeps (parent).
    heartbeat_interval: float = 0.25
    #: A heartbeat older than this marks the worker hung/killed.
    heartbeat_grace: float = 2.0
    #: Retire a worker after serving this many requests (``None`` = never).
    recycle_after_requests: int | None = None
    #: Retire a worker whose RSS crosses this many bytes (``None`` = never).
    max_rss_bytes: int | None = None
    #: Extra seconds past a request's deadline before declaring the
    #: worker hung on it.
    task_grace_seconds: float = 5.0
    #: Timeout for requests without a deadline (``None`` = wait forever).
    default_task_timeout: float | None = None
    #: Pipe-poll slice while a request is in flight (liveness check cadence).
    poll_slice_seconds: float = 0.05


def _rss_bytes(pid: int | None) -> int | None:
    """Resident-set bytes of *pid* via procfs, or ``None`` off-Linux."""
    if pid is None:
        return None
    try:
        with open(f"/proc/{pid}/statm", "rb") as handle:
            fields = handle.read().split()
        page = os.sysconf("SC_PAGESIZE")
        return int(fields[1]) * int(page)
    except (OSError, ValueError, IndexError):
        return None


def _supervised_worker_main(
    config: WorkerConfig,
    conn: Any,
    heartbeat: Any,
    interval: float,
) -> None:
    """Child process entry: heartbeat thread + task recv/serve loop."""
    # The parent coordinates shutdown through the pipe and SIGKILL;
    # a terminal Ctrl+C must not race the drain protocol.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    stop = threading.Event()

    def _beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.monotonic()
            stop.wait(interval)

    # Start beating before the (potentially slow) executor build so the
    # parent's grace window covers warm-up.
    beater = threading.Thread(target=_beat, name="heartbeat", daemon=True)
    beater.start()
    state = WorkerState(config)
    try:
        while True:
            try:
                payload = conn.recv_bytes()
            except (EOFError, OSError):
                break
            if payload == _RETIRE:
                break
            task: WorkerTask = pickle.loads(payload)
            result = state.run(task)
            try:
                blob = pickle.dumps(result)
            except Exception as exc:
                # An unpicklable result must not wedge the parent's
                # dispatcher waiting forever — degrade to a structured
                # crash outcome for this request alone.
                blob = pickle.dumps(
                    WorkerResult(
                        index=task.index,
                        outcome=crash_outcome(
                            task.request,
                            WorkerCrashError(
                                f"worker result for request "
                                f"{task.request.id!r} was not picklable: "
                                f"{type(exc).__name__}: {exc}",
                                request_id=task.request.id,
                            ),
                        ),
                    )
                )
            try:
                conn.send_bytes(blob)
            except (BrokenPipeError, OSError):
                break
    finally:
        stop.set()


class _Ticket:
    """One submitted request: pre-pickled task + its settlement future."""

    __slots__ = ("index", "request", "task_bytes", "timeout", "future")

    def __init__(
        self,
        index: int,
        request: Any,
        task_bytes: bytes,
        timeout: float | None,
        future: "Future[WorkerResult]",
    ) -> None:
        self.index = index
        self.request = request
        self.task_bytes = task_bytes
        self.timeout = timeout
        self.future = future


class _WorkerSlot:
    """One supervised worker: process, pipe, heartbeat, bookkeeping.

    ``lock`` arbitrates who may touch the process/pipe: a dispatcher
    holds it for the whole in-flight window (and for recycling), the
    monitor only try-acquires it — so the monitor supervises exactly
    the *idle* workers and never races an in-flight dispatch.
    """

    __slots__ = (
        "index",
        "process",
        "conn",
        "heartbeat",
        "served",
        "spawned_at",
        "busy",
        "lock",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Any = None
        self.conn: Any = None
        self.heartbeat: Any = None
        self.served = 0
        self.spawned_at = 0.0
        self.busy = False
        self.lock = threading.Lock()


class SupervisedWorkerPool:
    """A restartable worker pool with heartbeats, recycling, and drain."""

    def __init__(
        self,
        config: WorkerConfig | None = None,
        *,
        policy: SupervisorPolicy | None = None,
    ) -> None:
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.config = (
            config
            if config is not None
            else WorkerConfig(pool_size=self.policy.pool_size)
        )
        self._ctx = multiprocessing.get_context()
        self.scoreboard = BreakerScoreboard()
        self.pool_hits = 0
        self.pool_delta_hits = 0
        self.pool_misses = 0
        #: Unplanned worker replacements (crash, hang, lost heartbeat).
        self.restarts = 0
        #: Planned worker replacements (served-count / RSS recycling).
        self.recycles = 0
        #: Requests resolved with a crash outcome (worker died/hung).
        self.crashes = 0
        #: Requests resolved by the drain deadline (ShuttingDownError).
        self.aborted = 0
        self.completed = 0
        self._tasks: "Any" = None  # queue.Queue, built in start()
        self._slots: list[_WorkerSlot] = []
        self._dispatchers: list[threading.Thread] = []
        self._monitor: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        self._stats_lock = threading.Lock()
        self._outstanding = 0
        self._started = False
        self._closed = False
        self._aborting = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "SupervisedWorkerPool":
        """Spawn the workers, their dispatchers, and the monitor."""
        if self._started:
            return self
        self._tasks = queue.Queue()
        self._started = True
        for index in range(max(1, self.policy.workers)):
            slot = _WorkerSlot(index)
            self._spawn_into(slot)
            self._slots.append(slot)
            dispatcher = threading.Thread(
                target=self._dispatch_loop,
                args=(slot,),
                name=f"repro-serve-dispatch-{index}",
                daemon=True,
            )
            dispatcher.start()
            self._dispatchers.append(dispatcher)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-serve-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def __enter__(self) -> "SupervisedWorkerPool":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown(drain=False, deadline=0.0)

    def _spawn_into(self, slot: _WorkerSlot) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        heartbeat = self._ctx.Value("d", 0.0)
        process = self._ctx.Process(
            target=_supervised_worker_main,
            args=(
                self.config,
                child_conn,
                heartbeat,
                self.policy.heartbeat_interval,
            ),
            name=f"repro-serve-worker-{slot.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.heartbeat = heartbeat
        slot.served = 0
        slot.spawned_at = time.monotonic()

    def _replace(self, slot: _WorkerSlot, *, planned: bool, kill: bool = False) -> None:
        """Respawn *slot*'s worker.  Caller must hold ``slot.lock``."""
        process = slot.process
        if process is not None:
            if kill and process.is_alive():
                process.kill()
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:
                pass
        self._spawn_into(slot)
        with self._stats_lock:
            if planned:
                self.recycles += 1
            else:
                self.restarts += 1

    # -- submission ---------------------------------------------------------
    def _task_timeout(self, request: Any) -> float | None:
        budget = getattr(request, "budget", None)
        if budget is not None and budget.deadline_seconds is not None:
            return budget.deadline_seconds + self.policy.task_grace_seconds
        return self.policy.default_task_timeout

    def submit(
        self, task: WorkerTask, *, timeout: float | None = None
    ) -> "Future[WorkerResult]":
        """Enqueue *task*; returns a future settling to a WorkerResult.

        The task is pickled *here*, in the submitter's thread, so the
        catalog state it carries is the state at submission time — a
        concurrent ``catalog update`` can never tear the snapshot.
        """
        if not self._started:
            raise RuntimeError("SupervisedWorkerPool.start() was never called")
        if self._closed:
            raise ShuttingDownError(
                "worker pool is draining and no longer accepts work"
            )
        if timeout is None:
            timeout = self._task_timeout(task.request)
        task_bytes = pickle.dumps(task)
        future: "Future[WorkerResult]" = Future()
        ticket = _Ticket(task.index, task.request, task_bytes, timeout, future)
        with self._stats_lock:
            self._outstanding += 1
        self._tasks.put(ticket)
        return future

    # -- dispatch -----------------------------------------------------------
    def _dispatch_loop(self, slot: _WorkerSlot) -> None:
        while True:
            ticket = self._tasks.get()
            if ticket is None:
                break
            if not ticket.future.set_running_or_notify_cancel():
                with self._stats_lock:
                    self._outstanding -= 1
                continue
            with slot.lock:
                slot.busy = True
                try:
                    result = self._run_on(slot, ticket)
                finally:
                    slot.busy = False
            self._absorb(result)
            ticket.future.set_result(result)
            with self._stats_lock:
                self._outstanding -= 1
            if not self._aborting:
                self._maybe_recycle(slot)

    def _run_on(self, slot: _WorkerSlot, ticket: _Ticket) -> WorkerResult:
        """Serve one ticket on *slot* (lock held), supervising liveness."""
        sent = False
        for _attempt in range(2):
            if not slot.process.is_alive():
                # Died idle, between tasks — the request is untouched,
                # so a fresh worker can serve it.
                self._replace(slot, planned=False)
            try:
                slot.conn.send_bytes(ticket.task_bytes)
                sent = True
                break
            except (BrokenPipeError, OSError):
                self._replace(slot, planned=False)
        if not sent:
            return self._crash_result(
                ticket, "could not be dispatched (worker unavailable)"
            )
        deadline = (
            None
            if ticket.timeout is None
            else time.monotonic() + ticket.timeout
        )
        while True:
            try:
                ready = slot.conn.poll(self.policy.poll_slice_seconds)
            except (BrokenPipeError, OSError):
                ready = False
            if ready:
                try:
                    payload = slot.conn.recv_bytes()
                except (EOFError, OSError):
                    self._replace(slot, planned=False)
                    return self._crash_result(ticket, "died mid-request")
                result: WorkerResult = pickle.loads(payload)
                slot.served += 1
                return result
            now = time.monotonic()
            if not slot.process.is_alive():
                self._replace(slot, planned=False)
                return self._crash_result(
                    ticket, "was killed mid-request"
                )
            if ticket.timeout is not None and deadline is not None:
                if now >= deadline:
                    self._replace(slot, planned=False, kill=True)
                    return self._crash_result(
                        ticket,
                        f"did not respond within {ticket.timeout:.3f}s "
                        "(hung or crashed)",
                    )
            stamp = max(float(slot.heartbeat.value), slot.spawned_at)
            if now - stamp > self.policy.heartbeat_grace:
                self._replace(slot, planned=False, kill=True)
                return self._crash_result(
                    ticket, "stopped heartbeating mid-request"
                )

    def _crash_result(self, ticket: _Ticket, detail: str) -> WorkerResult:
        request = ticket.request
        error: ServiceError
        if self._aborting:
            error = ShuttingDownError(
                f"request {request.id!r} was aborted by the drain deadline; "
                "retry against a replacement instance"
            )
            with self._stats_lock:
                self.aborted += 1
        else:
            error = WorkerCrashError(
                f"worker serving request {request.id!r} {detail}; "
                "only this request fails",
                request_id=request.id,
            )
            with self._stats_lock:
                self.crashes += 1
        return WorkerResult(
            index=ticket.index, outcome=crash_outcome(request, error)
        )

    def _absorb(self, result: WorkerResult) -> None:
        """Merge one result's deltas into parent-side accounting."""
        with self._stats_lock:
            self.scoreboard.merge(result.breaker_deltas)
            if result.fingerprint:
                if result.pool_event == "delta":
                    self.pool_delta_hits += 1
                elif result.pool_hit:
                    self.pool_hits += 1
                else:
                    self.pool_misses += 1
            self.completed += 1

    def _maybe_recycle(self, slot: _WorkerSlot) -> None:
        """Retire *slot*'s worker between requests when due (planned)."""
        policy = self.policy
        due = (
            policy.recycle_after_requests is not None
            and slot.served >= policy.recycle_after_requests
        )
        if not due and policy.max_rss_bytes is not None:
            rss = _rss_bytes(getattr(slot.process, "pid", None))
            due = rss is not None and rss >= policy.max_rss_bytes
        if not due:
            return
        with slot.lock:
            try:
                slot.conn.send_bytes(_RETIRE)
                slot.process.join(timeout=2.0)
            except (BrokenPipeError, OSError):
                pass
            self._replace(slot, planned=True, kill=slot.process.is_alive())

    # -- supervision --------------------------------------------------------
    def _monitor_loop(self) -> None:
        interval = self.policy.heartbeat_interval
        while not self._monitor_stop.wait(interval):
            try:
                self.heartbeat_sweep()
            except Exception:
                # A chaos fault raised at ``worker_heartbeat`` must not
                # kill supervision itself; the next tick sweeps again.
                continue

    def heartbeat_sweep(self) -> int:
        """One parent-side supervision pass over the *idle* slots.

        Busy slots are skipped (their dispatcher is already watching
        liveness at poll-slice cadence).  Returns the number of workers
        replaced by this sweep.
        """
        fire("worker_heartbeat")
        replaced = 0
        now = time.monotonic()
        for slot in self._slots:
            if not slot.lock.acquire(blocking=False):
                continue
            try:
                if slot.process is None:
                    continue
                if not slot.process.is_alive():
                    self._replace(slot, planned=False)
                    replaced += 1
                    continue
                stamp = max(float(slot.heartbeat.value), slot.spawned_at)
                if now - stamp > self.policy.heartbeat_grace:
                    self._replace(slot, planned=False, kill=True)
                    replaced += 1
            finally:
                slot.lock.release()
        return replaced

    # -- introspection ------------------------------------------------------
    def queue_depth(self) -> int:
        """Tickets waiting for a dispatcher (approximate, thread-safe)."""
        if self._tasks is None:
            return 0
        return self._tasks.qsize()

    def busy_workers(self) -> int:
        return sum(1 for slot in self._slots if slot.busy)

    def outstanding(self) -> int:
        """Requests submitted but not yet settled (queued + in flight)."""
        with self._stats_lock:
            return self._outstanding

    def stats(self) -> dict:
        """A JSON-ready snapshot for the daemon's ``stats`` message."""
        with self._stats_lock:
            return {
                "workers": len(self._slots),
                "busy": sum(1 for slot in self._slots if slot.busy),
                "queue_depth": self.queue_depth(),
                "outstanding": self._outstanding,
                "completed": self.completed,
                "crashes": self.crashes,
                "aborted": self.aborted,
                "restarts": self.restarts,
                "recycles": self.recycles,
                "pool": {
                    "hits": self.pool_hits,
                    "delta_hits": self.pool_delta_hits,
                    "misses": self.pool_misses,
                },
                "breakers": self.scoreboard.summary(),
            }

    # -- shutdown -----------------------------------------------------------
    def shutdown(
        self, *, drain: bool = True, deadline: float | None = None
    ) -> dict:
        """Stop the pool; returns a drain report.

        ``drain=True`` waits (up to *deadline* seconds) for every
        submitted request to settle; whatever is still queued or in
        flight past the deadline is resolved with a structured
        :class:`~repro.errors.ShuttingDownError` outcome — never
        silently dropped.  Fires ``serve_drain`` at each phase
        transition (stop admitting, in-flight settled, pool down).
        """
        if self._closed and not self._started:
            return {"drained": True, "completed": 0, "aborted": 0}
        self._closed = True
        fire("serve_drain")  # phase: stop admitting
        if not self._started:
            return {"drained": True, "completed": 0, "aborted": 0}
        drained = True
        if drain:
            limit = (
                None if deadline is None else time.monotonic() + deadline
            )
            while self.outstanding() > 0:
                if limit is not None and time.monotonic() >= limit:
                    drained = False
                    break
                time.sleep(self.policy.poll_slice_seconds)
        else:
            drained = self.outstanding() == 0
        if not drained:
            # Past the deadline: abort what is queued, kill what is in
            # flight.  Dispatchers resolve their killed requests with
            # ShuttingDownError (``_aborting`` flips the error family).
            self._aborting = True
            while True:
                try:
                    ticket = self._tasks.get_nowait()
                except queue.Empty:
                    break
                if ticket is None:
                    continue
                if ticket.future.set_running_or_notify_cancel():
                    ticket.future.set_result(
                        self._crash_result(ticket, "aborted")
                    )
                with self._stats_lock:
                    self._outstanding -= 1
            for slot in self._slots:
                if slot.busy and slot.process is not None:
                    if slot.process.is_alive():
                        slot.process.kill()
        for _ in self._dispatchers:
            self._tasks.put(None)
        for dispatcher in self._dispatchers:
            dispatcher.join(timeout=10.0)
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        fire("serve_drain")  # phase: in-flight settled
        for slot in self._slots:
            if slot.conn is not None:
                try:
                    slot.conn.send_bytes(_RETIRE)
                except (BrokenPipeError, OSError):
                    pass
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(timeout=1.0)
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join(timeout=1.0)
            if slot.conn is not None:
                try:
                    slot.conn.close()
                except OSError:
                    pass
        fire("serve_drain")  # phase: pool shut down
        with self._stats_lock:
            return {
                "drained": drained,
                "completed": self.completed,
                "aborted": self.aborted,
                "crashes": self.crashes,
                "restarts": self.restarts,
                "recycles": self.recycles,
            }
