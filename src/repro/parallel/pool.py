"""Warm :class:`PlannerContext` pools keyed by content fingerprint.

A planner context is expensive to warm up: its containment cache and
interner only pay off once the same view definitions have been planned
against a few times.  A parallel worker therefore keeps a small LRU pool
of contexts keyed by catalog fingerprint, so that consecutive requests
against the same catalog reuse the warm memoization state, while
requests against a different catalog get (and keep) their own.

Two fingerprint granularities coexist:

* :func:`context_fingerprint` — the legacy opaque string: one hash over
  the whole rendered catalog plus configuration.  Equal-or-nothing.
* :func:`catalog_fingerprint` — a structured
  :class:`CatalogFingerprint` carrying the catalog's Merkle-style
  content root *and* the per-view content hashes (the same hashes
  :meth:`repro.views.view.ViewCatalog.view_hashes` maintains
  incrementally).  Because the per-view hashes ride along, the pool can
  see that a request's catalog differs from a pooled entry's by only a
  small delta — one view added, one replaced — and **upgrade** the warm
  context instead of cold-starting: planner memos are keyed on
  structural content, so a context warmed on catalog version *n* is
  sound for version *n+1* as-is (see
  :meth:`~repro.planner.context.PlannerContext.retire_views` for the
  memory-hygiene half).

The pool is deliberately tiny (default 4 entries): a worker in a batch
run sees at most a handful of distinct catalogs, and each warm context
holds the memoized containment work for its whole catalog.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..planner.context import PlannerContext
from ..views.view import (
    View,
    ViewCatalog,
    catalog_content_root,
    view_content_hash,
)

__all__ = [
    "CatalogFingerprint",
    "PlannerContextPool",
    "catalog_fingerprint",
    "context_fingerprint",
]


def _config_hash(config: Mapping | None) -> str:
    """Hash of the planner configuration (canonical JSON, order-free)."""
    return hashlib.sha256(
        json.dumps(dict(config or {}), sort_keys=True, default=str).encode(
            "utf-8"
        )
    ).hexdigest()


@dataclass(frozen=True)
class CatalogFingerprint:
    """A structured, versioned fingerprint of (catalog, configuration).

    ``root`` is the catalog's order-independent content root (sha256 over
    the sorted per-view hashes); ``view_hashes`` the sorted
    ``(name, content-hash)`` pairs it was computed from; ``config_hash``
    a hash of the planner configuration.  Two fingerprints with equal
    ``key`` describe byte-identical planning inputs; two with equal
    ``config_hash`` but different roots describe the same configuration
    against different catalog versions — and :meth:`delta` measures how
    different.
    """

    root: str
    view_hashes: tuple[tuple[str, str], ...]
    config_hash: str

    @property
    def key(self) -> str:
        """The exact-match pool key."""
        return f"{self.root}:{self.config_hash}"

    def delta(self, other: "CatalogFingerprint") -> int:
        """Number of per-view changes between the two catalogs.

        The size of the symmetric difference of the ``(name, hash)``
        pair sets: an added or removed view counts 1, a replaced
        (same-name, new-definition) view counts 2.
        """
        return len(set(self.view_hashes) ^ set(other.view_hashes))

    def names_only_in(self, other: "CatalogFingerprint") -> frozenset[str]:
        """View names *other* has that ``self`` does not (by content)."""
        mine = set(self.view_hashes)
        return frozenset(
            name for name, digest in other.view_hashes
            if (name, digest) not in mine
        )


def context_fingerprint(
    views: Iterable[View],
    config: Mapping | None = None,
) -> str:
    """Legacy whole-catalog content hash (opaque string; equal-or-nothing).

    Two requests share a warm context exactly when their rendered view
    definitions and configuration (chain, backend, caching flags, ...)
    are identical; the hash is over a canonical JSON rendering, so key
    order in *config* does not matter.  Prefer
    :func:`catalog_fingerprint` where delta-reuse matters.
    """
    payload = {
        "views": [f"{view.name} := {view.definition}" for view in views],
        "config": dict(config or {}),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    )
    return digest.hexdigest()


def catalog_fingerprint(
    views: ViewCatalog | Iterable[View],
    config: Mapping | None = None,
) -> CatalogFingerprint:
    """The structured fingerprint of *views* under *config*.

    For a :class:`ViewCatalog` the per-view hashes and content root are
    read off the catalog's incrementally-maintained state (O(1) after
    any delta); a bare view sequence is hashed from scratch.
    """
    if isinstance(views, ViewCatalog):
        hashes = views.view_hashes()
        root = views.content_root()
    else:
        hashes = {view.name: view_content_hash(view) for view in views}
        root = catalog_content_root(hashes)
    return CatalogFingerprint(
        root=root,
        view_hashes=tuple(sorted(hashes.items())),
        config_hash=_config_hash(config),
    )


@dataclass
class _PoolEntry:
    """One pooled context plus what it was warmed on."""

    context: PlannerContext
    fingerprint: CatalogFingerprint | None = None
    #: Name -> ``View`` snapshot of the catalog the context was last
    #: used against — kept so a delta upgrade can hand the exact removed
    #: ``View`` objects to :meth:`PlannerContext.retire_views`.  A
    #: snapshot (not the catalog reference) because catalogs mutate in
    #: place; ``None`` for legacy string-keyed entries.
    views: "dict[str, View] | None" = None


class PlannerContextPool:
    """An LRU pool of warm planner contexts, keyed by fingerprint.

    ``acquire`` is the legacy equal-or-nothing path (opaque string
    keys).  ``acquire_catalog`` is fingerprint-aware: an exact content
    root match is a *hit*; a pooled entry for the same configuration
    whose catalog differs by at most ``max_delta_views`` per-view
    changes is a *delta hit* — the warm context is upgraded in place
    (re-keyed, removed views retired) instead of cold-starting.
    """

    def __init__(
        self,
        max_entries: int = 4,
        *,
        factory: Callable[[], PlannerContext] = PlannerContext,
        max_delta_views: int = 4,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.max_delta_views = max_delta_views
        self._factory = factory
        self._entries: "OrderedDict[str, _PoolEntry]" = OrderedDict()
        self.hits = 0
        self.delta_hits = 0
        self.misses = 0
        self.evictions = 0

    def counters(self) -> dict[str, int]:
        """The pool's counters as a plain dict (for profiles/JSON)."""
        return {
            "hits": self.hits,
            "delta_hits": self.delta_hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def acquire(
        self,
        fingerprint: str,
        factory: Callable[[], PlannerContext] | None = None,
    ) -> tuple[PlannerContext, bool]:
        """The warm context for *fingerprint*, plus whether it was a hit.

        A miss builds a fresh context (via the per-call *factory* when
        given, else the pool's) and may evict the least-recently-used
        entry to stay within ``max_entries``.
        """
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry.context, True
        self.misses += 1
        context = (factory or self._factory)()
        self._store(fingerprint, _PoolEntry(context))
        return context, False

    def acquire_catalog(
        self,
        catalog: ViewCatalog,
        config: Mapping | None = None,
        factory: Callable[[], PlannerContext] | None = None,
    ) -> tuple[PlannerContext, str]:
        """A warm context for *catalog* under *config*; returns the event.

        The event is ``"exact"`` (same content root and configuration),
        ``"delta"`` (a same-configuration entry within
        ``max_delta_views`` per-view changes was upgraded in place), or
        ``"miss"`` (fresh context).  Delta upgrades are sound without
        any invalidation because every planner memo is keyed on
        structural content; removed views are retired from the upgraded
        context purely to release memory.
        """
        fingerprint = catalog_fingerprint(catalog, config)
        snapshot = {view.name: view for view in catalog}
        entry = self._entries.get(fingerprint.key)
        if entry is not None:
            self._entries.move_to_end(fingerprint.key)
            entry.fingerprint = fingerprint
            entry.views = snapshot
            self.hits += 1
            return entry.context, "exact"
        upgraded = self._nearest(fingerprint)
        if upgraded is not None:
            key, entry = upgraded
            del self._entries[key]
            if entry.views is not None and entry.fingerprint is not None:
                gone = fingerprint.names_only_in(entry.fingerprint)
                retired = [
                    view
                    for name in gone
                    if (view := entry.views.get(name)) is not None
                ]
                if retired:
                    entry.context.retire_views(retired)
            entry.fingerprint = fingerprint
            entry.views = snapshot
            self._store(fingerprint.key, entry)
            self.delta_hits += 1
            return entry.context, "delta"
        self.misses += 1
        context = (factory or self._factory)()
        self._store(
            fingerprint.key,
            _PoolEntry(context, fingerprint=fingerprint, views=snapshot),
        )
        return context, "miss"

    def _nearest(
        self, fingerprint: CatalogFingerprint
    ) -> tuple[str, _PoolEntry] | None:
        """The closest same-configuration entry within the delta budget."""
        best: tuple[int, str, _PoolEntry] | None = None
        for key, entry in self._entries.items():
            pooled = entry.fingerprint
            if pooled is None or pooled.config_hash != fingerprint.config_hash:
                continue
            delta = fingerprint.delta(pooled)
            if delta > self.max_delta_views:
                continue
            if best is None or delta < best[0]:
                best = (delta, key, entry)
        if best is None:
            return None
        return best[1], best[2]

    def _store(self, key: str, entry: _PoolEntry) -> None:
        self._entries[key] = entry
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: object) -> bool:
        if isinstance(fingerprint, CatalogFingerprint):
            return fingerprint.key in self._entries
        return fingerprint in self._entries
