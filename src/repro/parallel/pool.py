"""Warm :class:`PlannerContext` pools keyed by content fingerprint.

A planner context is expensive to warm up: its containment cache and
interner only pay off once the same view definitions have been planned
against a few times.  A parallel worker therefore keeps a small LRU pool
of contexts keyed by :func:`context_fingerprint` — a content hash of the
view catalog plus the planner configuration — so that consecutive
requests against the same catalog reuse the warm memoization state,
while requests against a different catalog get (and keep) their own.

The pool is deliberately tiny (default 4 entries): a worker in a batch
run sees at most a handful of distinct catalogs, and each warm context
holds the memoized containment work for its whole catalog.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Callable, Iterable, Mapping

from ..planner.context import PlannerContext
from ..views.view import View

__all__ = ["PlannerContextPool", "context_fingerprint"]


def context_fingerprint(
    views: Iterable[View],
    config: Mapping | None = None,
) -> str:
    """Content hash of a view catalog plus planner configuration.

    Two requests share a warm context exactly when their rendered view
    definitions and configuration (chain, backend, caching flags, ...)
    are identical; the hash is over a canonical JSON rendering, so key
    order in *config* does not matter.
    """
    payload = {
        "views": [f"{view.name} := {view.definition}" for view in views],
        "config": dict(config or {}),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    )
    return digest.hexdigest()


class PlannerContextPool:
    """An LRU pool of warm planner contexts, keyed by fingerprint."""

    def __init__(
        self,
        max_entries: int = 4,
        *,
        factory: Callable[[], PlannerContext] = PlannerContext,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._factory = factory
        self._entries: "OrderedDict[str, PlannerContext]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def acquire(
        self,
        fingerprint: str,
        factory: Callable[[], PlannerContext] | None = None,
    ) -> tuple[PlannerContext, bool]:
        """The warm context for *fingerprint*, plus whether it was a hit.

        A miss builds a fresh context (via the per-call *factory* when
        given, else the pool's) and may evict the least-recently-used
        entry to stay within ``max_entries``.
        """
        context = self._entries.get(fingerprint)
        if context is not None:
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return context, True
        self.misses += 1
        context = (factory or self._factory)()
        self._entries[fingerprint] = context
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        return context, False

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: object) -> bool:
        return fingerprint in self._entries
