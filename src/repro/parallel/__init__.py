"""Process-pool parallel planning: batch fan-out and warm context pools.

Public surface:

* :class:`ParallelPlanningEngine` — ``repro batch --workers N``: fans
  service-layer requests across a process pool, outcomes in input
  order, with per-worker warm planner-context pools, breaker-delta
  merging, and per-task crash isolation.
* :func:`plan_map` — the experiment harness's lighter fan-out of bare
  ``plan()`` calls.
* :class:`PlannerContextPool` / :func:`catalog_fingerprint` — the warm
  context pool and its structured, delta-aware catalog fingerprint
  (:func:`context_fingerprint` is the legacy whole-catalog string key).
* :class:`SupervisedWorkerPool` / :class:`SupervisorPolicy` — the
  :mod:`repro.serve` daemon's long-lived pool: heartbeat supervision,
  crash isolation with restart, recycling, drain-aware shutdown.
"""

from .engine import (
    BreakerScoreboard,
    ParallelPlanningEngine,
    ParallelPolicy,
    plan_map,
)
from .supervisor import SupervisedWorkerPool, SupervisorPolicy
from .pool import (
    CatalogFingerprint,
    PlannerContextPool,
    catalog_fingerprint,
    context_fingerprint,
)
from .worker import (
    PlanTask,
    PlanTaskResult,
    WorkerConfig,
    WorkerResult,
    WorkerState,
    WorkerTask,
    crash_outcome,
    run_plan_task,
)

__all__ = [
    "BreakerScoreboard",
    "CatalogFingerprint",
    "ParallelPlanningEngine",
    "ParallelPolicy",
    "PlanTask",
    "PlanTaskResult",
    "PlannerContextPool",
    "SupervisedWorkerPool",
    "SupervisorPolicy",
    "WorkerConfig",
    "WorkerResult",
    "WorkerState",
    "WorkerTask",
    "catalog_fingerprint",
    "context_fingerprint",
    "crash_outcome",
    "plan_map",
    "run_plan_task",
]
