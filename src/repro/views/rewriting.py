"""Equivalent rewritings and the minimality notions of Section 3.

Terminology (Figure 1):

* **rewriting** — a query over view predicates whose expansion is
  *equivalent* to the query (Definition 2.3);
* **minimal rewriting** — no redundant subgoals *as a query over the view
  predicates* (Chandra-Merlin minimality);
* **locally minimal rewriting (LMR)** — no subgoal can be dropped while
  the *expansion* stays equivalent to the query;
* **containment-minimal rewriting (CMR)** — an LMR with no other LMR
  properly contained in it as a query (see :mod:`repro.core.lattice`);
* **globally minimal rewriting (GMR)** — fewest subgoals overall.

Note the subtlety demonstrated by P2/P3 of the car-loc-part example: a
rewriting can be minimal as a query yet not locally minimal, because
removing a subgoal changes the query but may preserve the *expansion's*
equivalence to ``Q``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

from ..containment.containment import is_contained_in, is_equivalent_to
from ..containment.minimize import is_minimal
from ..datalog.query import ConjunctiveQuery
from .expansion import expand
from .view import ViewCatalog


def is_equivalent_rewriting(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewCatalog,
) -> bool:
    """Definition 2.3: ``P`` is an equivalent rewriting iff ``P^exp ≡ Q``."""
    return is_equivalent_to(expand(rewriting, views), query)


def is_contained_rewriting(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewCatalog,
) -> bool:
    """Whether ``P^exp ⊑ Q`` (the open-world notion used by the baselines)."""
    return is_contained_in(expand(rewriting, views), query)


def is_minimal_as_query(rewriting: ConjunctiveQuery) -> bool:
    """Minimality over the view predicates (region 1 of Figure 1)."""
    return is_minimal(rewriting)


def is_locally_minimal(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewCatalog,
) -> bool:
    """Whether no single subgoal can be dropped while staying a rewriting."""
    if not is_equivalent_rewriting(rewriting, query, views):
        return False
    for index in range(len(rewriting.body)):
        candidate = rewriting.without_atom(index)
        if candidate.is_safe() and is_equivalent_rewriting(candidate, query, views):
            return False
    return True


def locally_minimize(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewCatalog,
) -> ConjunctiveQuery:
    """Greedily drop subgoals until the rewriting is locally minimal.

    This is the two-step minimization of Section 3.1: the result is an LMR
    reachable from *rewriting*; different drop orders may reach different
    LMRs (use :func:`enumerate_lmrs_within` for all of them).
    """
    current = rewriting.dedup_body()
    changed = True
    while changed:
        changed = False
        for index in range(len(current.body)):
            candidate = current.without_atom(index)
            if candidate.is_safe() and is_equivalent_rewriting(
                candidate, query, views
            ):
                current = candidate
                changed = True
                break
    return current


def enumerate_lmrs_within(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewCatalog,
) -> Iterator[ConjunctiveQuery]:
    """All LMRs whose subgoals are a subset of *rewriting*'s subgoals.

    Enumerates subsets smallest-first and keeps the subset-minimal
    equivalent ones.  Exponential in ``len(rewriting)``; intended for the
    small rewritings that arise from view-tuple search spaces.
    """
    body = rewriting.dedup_body().body
    found: list[frozenset[int]] = []
    for size in range(1, len(body) + 1):
        for indices in combinations(range(len(body)), size):
            index_set = frozenset(indices)
            if any(previous <= index_set for previous in found):
                continue
            candidate = rewriting.with_body(body[i] for i in indices)
            if not candidate.is_safe():
                continue
            if is_equivalent_rewriting(candidate, query, views):
                found.append(index_set)
                yield candidate


def subgoal_count(rewriting: ConjunctiveQuery) -> int:
    """The M1 size of a rewriting: its number of subgoals."""
    return len(rewriting.body)
