"""View definitions and view catalogs.

A view is a safe conjunctive query over the base relations (Section 2.1).
As is standard (and as in every example of the paper), view heads must
list distinct variables — the view relation's schema — with no constants
or repeated variables; this keeps view expansion a pure substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..datalog.query import ConjunctiveQuery, MalformedQueryError
from ..datalog.parser import parse_query
from ..datalog.terms import Variable, is_variable
from ..errors import DuplicateViewError, UnknownViewError


@dataclass(frozen=True)
class View:
    """A named materialized view with a conjunctive definition."""

    definition: ConjunctiveQuery

    def __post_init__(self) -> None:
        self.definition.check_safe()
        head_args = self.definition.head.args
        if not all(is_variable(arg) for arg in head_args):
            raise MalformedQueryError(
                f"view {self.name}: head arguments must be variables"
            )
        if len(set(head_args)) != len(head_args):
            raise MalformedQueryError(
                f"view {self.name}: head variables must be distinct"
            )

    @property
    def name(self) -> str:
        """The view's relation name (head predicate)."""
        return self.definition.name

    @property
    def arity(self) -> int:
        """The view relation's arity."""
        return self.definition.arity

    @property
    def head_variables(self) -> tuple[Variable, ...]:
        """The view's distinguished variables in schema order."""
        return tuple(self.definition.head.args)  # all variables by validation

    def existential_variables(self) -> frozenset[Variable]:
        """The view's nondistinguished variables."""
        return self.definition.existential_variables()

    def __str__(self) -> str:
        return str(self.definition)


class ViewCatalog:
    """A set of views indexed by name.

    The catalog is what a rewriting is interpreted against: any body
    predicate of a rewriting that names a catalog view is unfolded by
    :func:`repro.views.expansion.expand`.
    """

    def __init__(self, views: Iterable[View | ConjunctiveQuery | str] = ()) -> None:
        self._views: dict[str, View] = {}
        for view in views:
            self.add(view)

    def add(self, view: View | ConjunctiveQuery | str) -> View:
        """Register a view given as a :class:`View`, a CQ, or datalog text.

        Raises :class:`~repro.errors.DuplicateViewError` (a
        ``ValueError``) when the name is already taken.
        """
        view = as_view(view)
        if view.name in self._views:
            raise DuplicateViewError(f"duplicate view name {view.name!r}")
        self._views[view.name] = view
        return view

    def get(self, name: str) -> View:
        """The view registered under *name*.

        Raises :class:`~repro.errors.UnknownViewError` (a ``KeyError``)
        listing the registered names when absent.
        """
        try:
            return self._views[name]
        except KeyError:
            registered = ", ".join(self._views) or "(none)"
            raise UnknownViewError(
                f"unknown view {name!r}; registered views: {registered}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._views

    def __iter__(self) -> Iterator[View]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def names(self) -> tuple[str, ...]:
        """All view names in registration order."""
        return tuple(self._views)

    def definitions(self) -> tuple[ConjunctiveQuery, ...]:
        """All view definitions in registration order."""
        return tuple(view.definition for view in self._views.values())


def as_view(view: View | ConjunctiveQuery | str) -> View:
    """Coerce datalog text or a conjunctive query into a :class:`View`."""
    if isinstance(view, View):
        return view
    if isinstance(view, str):
        view = parse_query(view)
    return View(view)
