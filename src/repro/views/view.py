"""View definitions and indexed, versioned view catalogs.

A view is a safe conjunctive query over the base relations (Section 2.1).
As is standard (and as in every example of the paper), view heads must
list distinct variables — the view relation's schema — with no constants
or repeated variables; this keeps view expansion a pure substitution.

The catalog is no longer an opaque list.  It maintains, under one
monotone **version** number:

* a **predicate-signature index** — views keyed by the ``(predicate,
  arity)`` pairs of their relational body atoms — so view-tuple
  computation and the hom-search setup can enumerate only the views
  sharing at least one body predicate with the query
  (:meth:`ViewCatalog.relevant_views`); a view that shares none
  provably contributes no view tuple over the query's canonical
  database (Section 3.3), so the pruning is exact, not heuristic;
* **per-view content hashes** and a Merkle-style **catalog root** over
  them, which is what the warm-context pool and the plan cache key on
  (two catalogs agree on the root exactly when they agree view by
  view); and
* a **delta API** — :meth:`ViewCatalog.add_view` /
  :meth:`ViewCatalog.remove_view` return a :class:`CatalogDelta`
  recording what changed between two consecutive versions, so callers
  (warm pools, plan caches, planner contexts) can invalidate per view
  instead of discarding everything.

Mutations are **copy-on-write**: the successor index and view map are
built off to the side and committed with plain attribute assignments
only after the ``catalog_delta`` fault-injection point has passed.  A
fault (or any exception) mid-delta therefore leaves the catalog on its
old, fully consistent version — no torn index, no half-registered view.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..datalog.query import ConjunctiveQuery, MalformedQueryError
from ..datalog.parser import parse_query
from ..datalog.terms import Variable, is_variable
from ..errors import DuplicateViewError, UnknownViewError
from ..testing.faults import fire


@dataclass(frozen=True)
class View:
    """A named materialized view with a conjunctive definition."""

    definition: ConjunctiveQuery

    def __post_init__(self) -> None:
        self.definition.check_safe()
        head_args = self.definition.head.args
        if not all(is_variable(arg) for arg in head_args):
            raise MalformedQueryError(
                f"view {self.name}: head arguments must be variables"
            )
        if len(set(head_args)) != len(head_args):
            raise MalformedQueryError(
                f"view {self.name}: head variables must be distinct"
            )

    @property
    def name(self) -> str:
        """The view's relation name (head predicate)."""
        return self.definition.name

    @property
    def arity(self) -> int:
        """The view relation's arity."""
        return self.definition.arity

    @property
    def head_variables(self) -> tuple[Variable, ...]:
        """The view's distinguished variables in schema order."""
        return tuple(self.definition.head.args)  # all variables by validation

    def existential_variables(self) -> frozenset[Variable]:
        """The view's nondistinguished variables."""
        return self.definition.existential_variables()

    def predicate_signature(self) -> frozenset[tuple[str, int]]:
        """The ``(predicate, arity)`` pairs of the relational body atoms.

        Comparison atoms are not base relations and are excluded; a view
        whose body is comparisons only has an empty signature and is
        treated as relevant to every query (never index-pruned).

        Memoized: the definition is immutable and the signature sits on
        the catalog index's hottest path (every lookup, every audit unit
        key), so it is computed once per :class:`View` instance.
        """
        cached = self.__dict__.get("_signature")
        if cached is None:
            cached = frozenset(
                (atom.predicate, atom.arity)
                for atom in self.definition.body
                if not atom.is_comparison
            )
            object.__setattr__(self, "_signature", cached)
        return cached

    def __str__(self) -> str:
        return str(self.definition)


def view_content_hash(view: View) -> str:
    """The per-view content hash: SHA-256 over ``name := definition``.

    This is the unit of the catalog's Merkle-style root — a view delta
    changes exactly the hashes of the views it touched.
    """
    return hashlib.sha256(
        f"{view.name} := {view.definition}".encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class CatalogDelta:
    """What one catalog mutation changed, between two consistent versions.

    ``added``/``removed`` carry the actual :class:`View` objects, so
    consumers (e.g. :meth:`repro.planner.context.PlannerContext.
    retire_views`) can compute structural keys for the views that left
    the catalog without keeping their own shadow copies.
    """

    added: tuple[View, ...]
    removed: tuple[View, ...]
    old_version: int
    new_version: int
    old_root: str
    new_root: str

    @property
    def touched(self) -> int:
        """How many views this delta touched."""
        return len(self.added) + len(self.removed)

    def __str__(self) -> str:
        names = [f"+{view.name}" for view in self.added]
        names += [f"-{view.name}" for view in self.removed]
        return (
            f"CatalogDelta(v{self.old_version}->v{self.new_version}, "
            f"{', '.join(names) or 'empty'})"
        )


class ViewCatalog:
    """A set of views indexed by name, predicate signature, and content.

    The catalog is what a rewriting is interpreted against: any body
    predicate of a rewriting that names a catalog view is unfolded by
    :func:`repro.views.expansion.expand`.

    Iteration order is registration order, as it always was; the index
    and hashes are bookkeeping on the side and never change what a
    planning run computes — only how much of the catalog it touches.
    """

    def __init__(self, views: Iterable[View | ConjunctiveQuery | str] = ()) -> None:
        self._views: dict[str, View] = {}
        #: ``(predicate, arity)`` -> view names, in registration order.
        self._index: dict[tuple[str, int], tuple[str, ...]] = {}
        #: View name -> registration sequence (orders index hits).
        self._order: dict[str, int] = {}
        #: Next registration sequence number (never reused).
        self._sequence = 0
        #: Monotone catalog version: +1 per successful mutation.
        self._version = 0
        #: Per-view content hashes (name -> sha256 hex).
        self._hashes: dict[str, str] = {}
        #: Cached Merkle root; ``None`` = recompute on next access.
        self._root: str | None = None
        #: Cached names of comparison-only views (empty predicate
        #: signature); ``None`` = rebuild on next index lookup.  These
        #: views join every lookup result, and recomputing them by
        #: scanning the whole catalog made ``views_for_predicates``
        #: O(|V|) per call — quadratic across a whole-catalog audit.
        self._blind: tuple[str, ...] | None = None
        for view in views:
            self.add(view)

    # -- versioning and content hashes ---------------------------------------
    @property
    def version(self) -> int:
        """Monotone version counter, bumped by every successful mutation."""
        return self._version

    def view_hashes(self) -> Mapping[str, str]:
        """Per-view content hashes (name -> sha256), registration order."""
        return dict(self._hashes)

    def content_root(self) -> str:
        """Merkle-style root over the per-view content hashes.

        The root is the SHA-256 of the sorted per-view hashes, so it is
        independent of registration order and changes exactly when some
        view's rendered definition (or the set of views) changes.
        """
        if self._root is None:
            self._root = catalog_content_root(self._hashes)
        return self._root

    # -- mutation (copy-on-write deltas) --------------------------------------
    def add(self, view: View | ConjunctiveQuery | str) -> View:
        """Register a view given as a :class:`View`, a CQ, or datalog text.

        Raises :class:`~repro.errors.DuplicateViewError` (a
        ``ValueError``) when the name is already taken.
        """
        return self.add_view(view).added[0]

    def add_view(self, view: View | ConjunctiveQuery | str) -> CatalogDelta:
        """Register a view and return the :class:`CatalogDelta`.

        The successor state is built copy-on-write and committed only
        after the ``catalog_delta`` injection point; a fault mid-delta
        leaves the catalog on the old consistent version.
        """
        view = as_view(view)
        if view.name in self._views:
            raise DuplicateViewError(f"duplicate view name {view.name!r}")
        old_root = self.content_root()
        # Build the successor state off to the side (copy-on-write).
        new_views = dict(self._views)
        new_views[view.name] = view
        new_index = dict(self._index)
        for pair in sorted(view.predicate_signature()):
            new_index[pair] = new_index.get(pair, ()) + (view.name,)
        new_order = dict(self._order)
        new_order[view.name] = self._sequence
        new_hashes = dict(self._hashes)
        new_hashes[view.name] = view_content_hash(view)
        delta = CatalogDelta(
            added=(view,),
            removed=(),
            old_version=self._version,
            new_version=self._version + 1,
            old_root=old_root,
            new_root=catalog_content_root(new_hashes),
        )
        self._commit(delta, new_views, new_index, new_order, new_hashes)
        return delta

    def remove_view(self, name: str) -> CatalogDelta:
        """Remove the view registered under *name*; return the delta.

        Raises :class:`~repro.errors.UnknownViewError` when absent.
        Copy-on-write like :meth:`add_view`: a fault mid-delta leaves
        the view registered and the index untouched.
        """
        view = self.get(name)
        old_root = self.content_root()
        new_views = dict(self._views)
        del new_views[name]
        new_index = dict(self._index)
        for pair in sorted(view.predicate_signature()):
            remaining = tuple(n for n in new_index.get(pair, ()) if n != name)
            if remaining:
                new_index[pair] = remaining
            else:
                new_index.pop(pair, None)
        new_order = dict(self._order)
        del new_order[name]
        new_hashes = dict(self._hashes)
        del new_hashes[name]
        delta = CatalogDelta(
            added=(),
            removed=(view,),
            old_version=self._version,
            new_version=self._version + 1,
            old_root=old_root,
            new_root=catalog_content_root(new_hashes),
        )
        self._commit(delta, new_views, new_index, new_order, new_hashes)
        return delta

    def replace_view(self, view: View | ConjunctiveQuery | str) -> CatalogDelta:
        """Swap in a new definition for an existing name; return the delta.

        Equivalent to remove + add under **one** version bump, so pool
        and cache consumers see a single-view delta rather than two.
        """
        view = as_view(view)
        old = self.get(view.name)
        old_root = self.content_root()
        new_views = dict(self._views)
        new_views[view.name] = view
        new_index = dict(self._index)
        stale = old.predicate_signature() - view.predicate_signature()
        fresh = view.predicate_signature() - old.predicate_signature()
        for pair in sorted(stale):
            remaining = tuple(
                n for n in new_index.get(pair, ()) if n != view.name
            )
            if remaining:
                new_index[pair] = remaining
            else:
                new_index.pop(pair, None)
        for pair in sorted(fresh):
            new_index[pair] = new_index.get(pair, ()) + (view.name,)
        new_order = dict(self._order)  # keeps the original sequence slot
        new_hashes = dict(self._hashes)
        new_hashes[view.name] = view_content_hash(view)
        delta = CatalogDelta(
            added=(view,),
            removed=(old,),
            old_version=self._version,
            new_version=self._version + 1,
            old_root=old_root,
            new_root=catalog_content_root(new_hashes),
        )
        self._commit(delta, new_views, new_index, new_order, new_hashes)
        return delta

    def _commit(
        self,
        delta: CatalogDelta,
        views: dict[str, View],
        index: dict[tuple[str, int], tuple[str, ...]],
        order: dict[str, int],
        hashes: dict[str, str],
    ) -> None:
        """Atomically install a fully-built successor state.

        ``fire`` sits *before* the assignments: a chaos fault raised at
        the ``catalog_delta`` point aborts the mutation with every
        attribute still describing the old version.  The assignments
        themselves are plain rebinds of already-built objects, so there
        is no observable intermediate state.
        """
        fire("catalog_delta")
        self._views = views
        self._index = index
        self._order = order
        self._hashes = hashes
        self._sequence += 1
        self._version = delta.new_version
        self._root = delta.new_root
        self._blind = None

    # -- lookup ----------------------------------------------------------------
    def get(self, name: str) -> View:
        """The view registered under *name*.

        Raises :class:`~repro.errors.UnknownViewError` (a ``KeyError``)
        listing the registered names when absent.
        """
        try:
            return self._views[name]
        except KeyError:
            registered = ", ".join(self._views) or "(none)"
            raise UnknownViewError(
                f"unknown view {name!r}; registered views: {registered}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._views

    def __iter__(self) -> Iterator[View]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def names(self) -> tuple[str, ...]:
        """All view names in registration order."""
        return tuple(self._views)

    def definitions(self) -> tuple[ConjunctiveQuery, ...]:
        """All view definitions in registration order."""
        return tuple(view.definition for view in self._views.values())

    # -- the predicate-signature index -----------------------------------------
    def indexed_predicates(self) -> frozenset[tuple[str, int]]:
        """Every ``(predicate, arity)`` pair some view's body mentions."""
        return frozenset(self._index)

    def views_for_predicates(
        self, pairs: Iterable[tuple[str, int]]
    ) -> tuple[View, ...]:
        """The views whose body mentions at least one of *pairs*.

        Results come back in registration order.  Views with an empty
        predicate signature (comparison-only bodies) are **always**
        included: the index cannot prove them irrelevant.
        """
        hits: set[str] = set()
        for pair in pairs:
            hits.update(self._index.get(pair, ()))
        if self._blind is None:
            self._blind = tuple(
                name
                for name, view in self._views.items()
                if not view.predicate_signature()
            )
        hits.update(self._blind)
        return tuple(
            self._views[name]
            for name in sorted(hits, key=self._order.__getitem__)
        )

    def relevant_views(self, query: ConjunctiveQuery) -> tuple[View, ...]:
        """The views sharing at least one body predicate with *query*.

        This is the Section 3.3 pruning set: a view sharing no
        ``(predicate, arity)`` pair with the query has no answer over
        the query's canonical database, hence an empty view-tuple set,
        hence no place in any contained rewriting.  A query with no
        relational atoms keeps the whole catalog (nothing provable).
        """
        pairs = frozenset(
            (atom.predicate, atom.arity)
            for atom in query.body
            if not atom.is_comparison
        )
        if not pairs:
            return tuple(self._views.values())
        return self.views_for_predicates(pairs)

    def relevant_names(self, query: ConjunctiveQuery) -> tuple[str, ...]:
        """Names of :meth:`relevant_views`, registration order."""
        return tuple(view.name for view in self.relevant_views(query))

    def index_neighbors(self, name: str) -> tuple[View, ...]:
        """The views sharing a ``(predicate, arity)`` pair with *name*.

        Registration order, excluding the view itself.  This is the
        catalog-audit unit's visibility set: the pairwise rules (C101/
        C102/C104) only ever compare a view against its index neighbors,
        because containment between views sharing no base predicate is
        impossible (a homomorphism has no atom to map onto) — the same
        exactness argument as :meth:`relevant_views`.  Comparison-only
        views (empty signature) appear in every view's neighbor set, per
        :meth:`views_for_predicates`.
        """
        view = self.get(name)
        return tuple(
            neighbor
            for neighbor in self.views_for_predicates(
                view.predicate_signature()
            )
            if neighbor.name != name
        )

    def names_sharing_predicates(
        self, predicates: Iterable[str]
    ) -> frozenset[str]:
        """Names of views whose body mentions any of the predicate *names*.

        Arity-insensitive (any ``(name, arity)`` index key counts) and,
        unlike :meth:`views_for_predicates`, **excludes** views with an
        empty predicate signature — this answers "shares a base
        predicate with", the static-analysis question (R006), not the
        pruning question.
        """
        wanted = set(predicates)
        hits: set[str] = set()
        for (predicate, _arity), names in self._index.items():
            if predicate in wanted:
                hits.update(names)
        return frozenset(hits)


def catalog_content_root(hashes: Mapping[str, str]) -> str:
    """The Merkle-style root of a per-view hash map (see ``content_root``)."""
    digest = hashlib.sha256()
    for view_hash in sorted(hashes.values()):
        digest.update(view_hash.encode("ascii"))
    digest.update(str(len(hashes)).encode("ascii"))
    return digest.hexdigest()


def as_view(view: View | ConjunctiveQuery | str) -> View:
    """Coerce datalog text or a conjunctive query into a :class:`View`."""
    if isinstance(view, View):
        return view
    if isinstance(view, str):
        view = parse_query(view)
    return View(view)
