"""Views substrate: definitions, expansion, and rewriting predicates."""

from .expansion import expand, expand_atom, expand_atoms
from .rewriting import (
    enumerate_lmrs_within,
    is_contained_rewriting,
    is_equivalent_rewriting,
    is_locally_minimal,
    is_minimal_as_query,
    locally_minimize,
    subgoal_count,
)
from .view import CatalogDelta, View, ViewCatalog, as_view, view_content_hash

__all__ = [
    "CatalogDelta",
    "View",
    "ViewCatalog",
    "as_view",
    "view_content_hash",
    "enumerate_lmrs_within",
    "expand",
    "expand_atom",
    "expand_atoms",
    "is_contained_rewriting",
    "is_equivalent_rewriting",
    "is_locally_minimal",
    "is_minimal_as_query",
    "locally_minimize",
    "subgoal_count",
]
