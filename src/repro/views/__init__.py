"""Views substrate: definitions, expansion, and rewriting predicates."""

from .expansion import expand, expand_atom, expand_atoms
from .rewriting import (
    enumerate_lmrs_within,
    is_contained_rewriting,
    is_equivalent_rewriting,
    is_locally_minimal,
    is_minimal_as_query,
    locally_minimize,
    subgoal_count,
)
from .view import View, ViewCatalog, as_view

__all__ = [
    "View",
    "ViewCatalog",
    "as_view",
    "enumerate_lmrs_within",
    "expand",
    "expand_atom",
    "expand_atoms",
    "is_contained_rewriting",
    "is_equivalent_rewriting",
    "is_locally_minimal",
    "is_minimal_as_query",
    "locally_minimize",
    "subgoal_count",
]
