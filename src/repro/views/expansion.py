"""Expansion (unfolding) of rewritings into base predicates.

``P^exp`` (Definition 2.2) is obtained from a rewriting ``P`` by replacing
every view subgoal with the view's body: head variables are substituted by
the subgoal's arguments and existential variables are replaced by fresh
variables, independently for each view occurrence.
"""

from __future__ import annotations

from typing import Sequence

from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery, fresh_factory_for
from ..datalog.substitution import Substitution
from ..datalog.terms import FreshVariableFactory, Variable
from ..errors import ArityMismatchError
from .view import View, ViewCatalog


def expand_atom(
    atom: Atom, view: View, factory: FreshVariableFactory
) -> tuple[Atom, ...]:
    """Unfold one view subgoal into the view's base-relation body.

    Existential variables of the view become fresh variables drawn from
    *factory*, so repeated uses of the same view stay standardized apart.
    Raises :class:`~repro.errors.ArityMismatchError` (a ``ValueError``)
    when the subgoal's arity does not match the view's schema.
    """
    if atom.arity != view.arity:
        raise ArityMismatchError(
            f"subgoal {atom} does not match view {view.name}/{view.arity}"
        )
    mapping: dict[Variable, object] = {
        head_var: arg for head_var, arg in zip(view.head_variables, atom.args)
    }
    for existential in sorted(view.existential_variables(), key=lambda v: v.name):
        mapping[existential] = factory.fresh_like(existential)
    substitution = Substitution(mapping)
    return substitution.apply_atoms(view.definition.body)


def expand(
    rewriting: ConjunctiveQuery, views: ViewCatalog
) -> ConjunctiveQuery:
    """The expansion ``P^exp`` of *rewriting* over the catalog's views.

    Subgoals whose predicate is not a catalog view (base relations or
    built-in comparisons) are kept unchanged, which supports the mixed
    rewritings of the related work ([6, 27]) as well as the paper's pure
    view rewritings.
    """
    factory = fresh_factory_for(rewriting, *(v.definition for v in views))
    expanded: list[Atom] = []
    for atom in rewriting.body:
        if atom.predicate in views and not atom.is_comparison:
            expanded.extend(expand_atom(atom, views.get(atom.predicate), factory))
        else:
            expanded.append(atom)
    return ConjunctiveQuery(rewriting.head, tuple(expanded))


def expand_atoms(
    atoms: Sequence[Atom],
    views: ViewCatalog,
    factory: FreshVariableFactory,
) -> tuple[Atom, ...]:
    """Expand a list of subgoals without a head (used by tuple-cores)."""
    expanded: list[Atom] = []
    for atom in atoms:
        if atom.predicate in views and not atom.is_comparison:
            expanded.extend(expand_atom(atom, views.get(atom.predicate), factory))
        else:
            expanded.append(atom)
    return tuple(expanded)
