"""The Section 7 experiment harness.

Each Figure 6-9 data point averages CoreCover over several random queries
at a fixed number of views.  The harness runs those sweeps and returns
structured rows; :mod:`repro.experiments.figures` maps figure names to
sweep configurations and renders the rows as the paper's series.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from dataclasses import field as dataclasses_field
from typing import Callable, Sequence

from ..core.corecover import CoreCoverResult, core_cover
from ..planner.context import PlannerContext
from ..workload.generator import (
    WorkloadConfig,
    WorkloadError,
    generate_workload,
    workload_series,
)


@dataclass(frozen=True)
class SweepPoint:
    """Averaged measurements for one (shape, #views) configuration."""

    num_views: int
    queries: int
    mean_time_ms: float
    max_time_ms: float
    mean_view_classes: float
    mean_total_view_tuples: float
    mean_view_tuple_classes: float
    mean_maximal_tuple_classes: float
    mean_gmr_count: float
    mean_gmr_size: float
    mean_hom_searches: float = 0.0
    mean_cache_hits: float = 0.0
    mean_cache_hit_rate: float = 0.0


@dataclass(frozen=True)
class SweepConfig:
    """A full sweep: the workload template plus the view-count axis."""

    shape: str
    num_relations: int
    nondistinguished: int
    view_counts: tuple[int, ...]
    queries_per_point: int = 40
    query_subgoals: int = 8
    seed: int = 1

    def workload_config(self, num_views: int) -> WorkloadConfig:
        """The workload template at a specific view count."""
        return WorkloadConfig(
            shape=self.shape,
            num_relations=self.num_relations,
            query_subgoals=self.query_subgoals,
            num_views=num_views,
            nondistinguished=self.nondistinguished,
            seed=self.seed,
        )


@dataclass
class _PointSamples:
    """Per-query measurements accumulated for one sweep point."""

    times_ms: list[float] = dataclasses_field(default_factory=list)
    view_classes: list[int] = dataclasses_field(default_factory=list)
    total_tuples: list[int] = dataclasses_field(default_factory=list)
    tuple_classes: list[int] = dataclasses_field(default_factory=list)
    maximal_classes: list[int] = dataclasses_field(default_factory=list)
    gmr_counts: list[int] = dataclasses_field(default_factory=list)
    gmr_sizes: list[int] = dataclasses_field(default_factory=list)
    hom_searches: list[int] = dataclasses_field(default_factory=list)
    cache_hits: list[int] = dataclasses_field(default_factory=list)
    cache_hit_rates: list[float] = dataclasses_field(default_factory=list)

    def add(
        self,
        *,
        time_ms: float,
        stats,
        gmr_count: int,
        gmr_size: int | None,
    ) -> None:
        self.times_ms.append(time_ms)
        self.view_classes.append(stats.view_classes)
        self.total_tuples.append(stats.total_view_tuples)
        self.tuple_classes.append(stats.view_tuple_classes)
        self.maximal_classes.append(stats.maximal_tuple_classes)
        self.gmr_counts.append(gmr_count)
        self.hom_searches.append(stats.hom_searches)
        self.cache_hits.append(stats.cache_hits)
        self.cache_hit_rates.append(stats.cache_hit_rate)
        if gmr_size is not None:
            self.gmr_sizes.append(gmr_size)

    def to_point(self, num_views: int, queries: int) -> SweepPoint:
        return SweepPoint(
            num_views=num_views,
            queries=queries,
            mean_time_ms=statistics.fmean(self.times_ms),
            max_time_ms=max(self.times_ms),
            mean_view_classes=statistics.fmean(self.view_classes),
            mean_total_view_tuples=statistics.fmean(self.total_tuples),
            mean_view_tuple_classes=statistics.fmean(self.tuple_classes),
            mean_maximal_tuple_classes=statistics.fmean(self.maximal_classes),
            mean_gmr_count=statistics.fmean(self.gmr_counts),
            mean_gmr_size=(
                statistics.fmean(self.gmr_sizes) if self.gmr_sizes else 0.0
            ),
            mean_hom_searches=statistics.fmean(self.hom_searches),
            mean_cache_hits=statistics.fmean(self.cache_hits),
            mean_cache_hit_rate=statistics.fmean(self.cache_hit_rates),
        )


#: Algorithm identity -> planner-registry backend name for the
#: parallel (``plan_map``) sweep path.
_ALGORITHM_BACKENDS: dict[str, str] = {
    "core_cover": "corecover",
    "core_cover_star": "corecover-star",
}


def run_sweep(
    config: SweepConfig,
    algorithm: Callable[..., CoreCoverResult] = core_cover,
    group_views: bool = True,
    group_tuples: bool = True,
    caching: bool | None = None,
    workers: int = 1,
) -> list[SweepPoint]:
    """Run CoreCover over the sweep, averaging per view count.

    ``algorithm`` may be swapped (e.g. for ``core_cover_star`` or an
    ablated variant); it must accept ``(query, views, group_views=...,
    group_tuples=...)`` and return a :class:`CoreCoverResult`.

    With ``caching=True`` (or ``False``) a shared
    :class:`PlannerContext` with memoization on (or off) is threaded
    through all queries of each sweep point, so structurally repeated
    view definitions are planned once per point; ``None`` keeps the
    legacy behaviour of a private context per call.

    ``workers > 1`` (or ``0`` = one per CPU) fans each point's queries
    across the :mod:`repro.parallel` process pool.  Only the named
    registry algorithms (``core_cover``, ``core_cover_star``) can cross
    the process boundary; timings are then the worker-side ``plan()``
    wall times.  Shared-context caching becomes per-worker, so cache-hit
    statistics are slightly lower than the serial single-context run.
    """
    if workers != 1:
        return _run_sweep_parallel(
            config,
            algorithm,
            group_views=group_views,
            group_tuples=group_tuples,
            caching=caching,
            workers=workers,
        )
    points = []
    for num_views in config.view_counts:
        template = config.workload_config(num_views)
        context = None if caching is None else PlannerContext(caching=caching)
        samples = _PointSamples()
        for workload in workload_series(template, config.queries_per_point):
            started = time.perf_counter()
            kwargs = {} if context is None else {"context": context}
            result = algorithm(
                workload.query,
                workload.views,
                group_views=group_views,
                group_tuples=group_tuples,
                **kwargs,
            )
            samples.add(
                time_ms=(time.perf_counter() - started) * 1000.0,
                stats=result.stats,
                gmr_count=len(result.rewritings),
                gmr_size=(
                    (result.minimum_subgoals() or 0)
                    if result.has_rewriting
                    else None
                ),
            )
        points.append(samples.to_point(num_views, config.queries_per_point))
    return points


def _run_sweep_parallel(
    config: SweepConfig,
    algorithm: Callable[..., CoreCoverResult],
    *,
    group_views: bool,
    group_tuples: bool,
    caching: bool | None,
    workers: int,
) -> list[SweepPoint]:
    from ..parallel import PlanTask, plan_map

    backend = _ALGORITHM_BACKENDS.get(getattr(algorithm, "__name__", ""))
    if backend is None:
        raise ValueError(
            "workers > 1 requires a registry algorithm "
            f"({', '.join(sorted(_ALGORITHM_BACKENDS))}); got "
            f"{getattr(algorithm, '__name__', algorithm)!r}"
        )
    points = []
    for num_views in config.view_counts:
        template = config.workload_config(num_views)
        tasks = [
            PlanTask(
                query=workload.query,
                views=workload.views,
                backend=backend,
                options={
                    "group_views": group_views,
                    "group_tuples": group_tuples,
                },
                caching=caching,
            )
            for workload in workload_series(
                template, config.queries_per_point
            )
        ]
        samples = _PointSamples()
        for result in plan_map(tasks, workers=workers):
            stats = result.stats
            if stats is None:  # pragma: no cover - corecover always reports
                continue
            samples.add(
                time_ms=result.elapsed_seconds * 1000.0,
                stats=stats,
                gmr_count=len(result.rewritings),
                gmr_size=(
                    result.minimum_subgoals
                    if result.has_rewriting
                    else None
                ),
            )
        points.append(samples.to_point(num_views, config.queries_per_point))
    return points


def write_csv(points: Sequence[SweepPoint], path: str) -> None:
    """Write sweep points to a CSV file (one row per view count)."""
    import csv
    import dataclasses

    fields = [f.name for f in dataclasses.fields(SweepPoint)]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fields)
        for point in points:
            writer.writerow(
                [getattr(point, field) for field in fields]
            )


def format_points(points: Sequence[SweepPoint]) -> str:
    """Render sweep points as an aligned text table."""
    header = (
        f"{'views':>6} {'time(ms)':>9} {'max(ms)':>9} {'viewcls':>8} "
        f"{'tuples':>7} {'tuplecls':>9} {'maxcls':>7} {'GMRs':>6} {'|GMR|':>6} "
        f"{'homs':>7} {'hit%':>5}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.num_views:>6} {p.mean_time_ms:>9.1f} {p.max_time_ms:>9.1f} "
            f"{p.mean_view_classes:>8.1f} {p.mean_total_view_tuples:>7.1f} "
            f"{p.mean_view_tuple_classes:>9.1f} "
            f"{p.mean_maximal_tuple_classes:>7.1f} {p.mean_gmr_count:>6.1f} "
            f"{p.mean_gmr_size:>6.2f} {p.mean_hom_searches:>7.1f} "
            f"{p.mean_cache_hit_rate:>5.0%}"
        )
    return "\n".join(lines)
