"""The Section 7 experiment harness.

Each Figure 6-9 data point averages CoreCover over several random queries
at a fixed number of views.  The harness runs those sweeps and returns
structured rows; :mod:`repro.experiments.figures` maps figure names to
sweep configurations and renders the rows as the paper's series.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.corecover import CoreCoverResult, core_cover
from ..planner.context import PlannerContext
from ..workload.generator import (
    WorkloadConfig,
    WorkloadError,
    generate_workload,
    workload_series,
)


@dataclass(frozen=True)
class SweepPoint:
    """Averaged measurements for one (shape, #views) configuration."""

    num_views: int
    queries: int
    mean_time_ms: float
    max_time_ms: float
    mean_view_classes: float
    mean_total_view_tuples: float
    mean_view_tuple_classes: float
    mean_maximal_tuple_classes: float
    mean_gmr_count: float
    mean_gmr_size: float
    mean_hom_searches: float = 0.0
    mean_cache_hits: float = 0.0
    mean_cache_hit_rate: float = 0.0


@dataclass(frozen=True)
class SweepConfig:
    """A full sweep: the workload template plus the view-count axis."""

    shape: str
    num_relations: int
    nondistinguished: int
    view_counts: tuple[int, ...]
    queries_per_point: int = 40
    query_subgoals: int = 8
    seed: int = 1

    def workload_config(self, num_views: int) -> WorkloadConfig:
        """The workload template at a specific view count."""
        return WorkloadConfig(
            shape=self.shape,
            num_relations=self.num_relations,
            query_subgoals=self.query_subgoals,
            num_views=num_views,
            nondistinguished=self.nondistinguished,
            seed=self.seed,
        )


def run_sweep(
    config: SweepConfig,
    algorithm: Callable[..., CoreCoverResult] = core_cover,
    group_views: bool = True,
    group_tuples: bool = True,
    caching: bool | None = None,
) -> list[SweepPoint]:
    """Run CoreCover over the sweep, averaging per view count.

    ``algorithm`` may be swapped (e.g. for ``core_cover_star`` or an
    ablated variant); it must accept ``(query, views, group_views=...,
    group_tuples=...)`` and return a :class:`CoreCoverResult`.

    With ``caching=True`` (or ``False``) a shared
    :class:`PlannerContext` with memoization on (or off) is threaded
    through all queries of each sweep point, so structurally repeated
    view definitions are planned once per point; ``None`` keeps the
    legacy behaviour of a private context per call.
    """
    points = []
    for num_views in config.view_counts:
        template = config.workload_config(num_views)
        context = None if caching is None else PlannerContext(caching=caching)
        times_ms: list[float] = []
        view_classes: list[int] = []
        total_tuples: list[int] = []
        tuple_classes: list[int] = []
        maximal_classes: list[int] = []
        gmr_counts: list[int] = []
        gmr_sizes: list[int] = []
        hom_searches: list[int] = []
        cache_hits: list[int] = []
        cache_hit_rates: list[float] = []
        for workload in workload_series(template, config.queries_per_point):
            started = time.perf_counter()
            kwargs = {} if context is None else {"context": context}
            result = algorithm(
                workload.query,
                workload.views,
                group_views=group_views,
                group_tuples=group_tuples,
                **kwargs,
            )
            times_ms.append((time.perf_counter() - started) * 1000.0)
            stats = result.stats
            view_classes.append(stats.view_classes)
            total_tuples.append(stats.total_view_tuples)
            tuple_classes.append(stats.view_tuple_classes)
            maximal_classes.append(stats.maximal_tuple_classes)
            gmr_counts.append(len(result.rewritings))
            hom_searches.append(stats.hom_searches)
            cache_hits.append(stats.cache_hits)
            cache_hit_rates.append(stats.cache_hit_rate)
            if result.has_rewriting:
                gmr_sizes.append(result.minimum_subgoals() or 0)
        points.append(
            SweepPoint(
                num_views=num_views,
                queries=config.queries_per_point,
                mean_time_ms=statistics.fmean(times_ms),
                max_time_ms=max(times_ms),
                mean_view_classes=statistics.fmean(view_classes),
                mean_total_view_tuples=statistics.fmean(total_tuples),
                mean_view_tuple_classes=statistics.fmean(tuple_classes),
                mean_maximal_tuple_classes=statistics.fmean(maximal_classes),
                mean_gmr_count=statistics.fmean(gmr_counts),
                mean_gmr_size=statistics.fmean(gmr_sizes) if gmr_sizes else 0.0,
                mean_hom_searches=statistics.fmean(hom_searches),
                mean_cache_hits=statistics.fmean(cache_hits),
                mean_cache_hit_rate=statistics.fmean(cache_hit_rates),
            )
        )
    return points


def write_csv(points: Sequence[SweepPoint], path: str) -> None:
    """Write sweep points to a CSV file (one row per view count)."""
    import csv
    import dataclasses

    fields = [f.name for f in dataclasses.fields(SweepPoint)]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fields)
        for point in points:
            writer.writerow(
                [getattr(point, field) for field in fields]
            )


def format_points(points: Sequence[SweepPoint]) -> str:
    """Render sweep points as an aligned text table."""
    header = (
        f"{'views':>6} {'time(ms)':>9} {'max(ms)':>9} {'viewcls':>8} "
        f"{'tuples':>7} {'tuplecls':>9} {'maxcls':>7} {'GMRs':>6} {'|GMR|':>6} "
        f"{'homs':>7} {'hit%':>5}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.num_views:>6} {p.mean_time_ms:>9.1f} {p.max_time_ms:>9.1f} "
            f"{p.mean_view_classes:>8.1f} {p.mean_total_view_tuples:>7.1f} "
            f"{p.mean_view_tuple_classes:>9.1f} "
            f"{p.mean_maximal_tuple_classes:>7.1f} {p.mean_gmr_count:>6.1f} "
            f"{p.mean_gmr_size:>6.2f} {p.mean_hom_searches:>7.1f} "
            f"{p.mean_cache_hit_rate:>5.0%}"
        )
    return "\n".join(lines)
