"""Experiment harness and the Section 7 figure drivers."""

from .harness import SweepConfig, SweepPoint, format_points, run_sweep, write_csv
from .figures import (
    FIGURES,
    FULL_VIEW_COUNTS,
    QUICK_VIEW_COUNTS,
    print_figure,
    run_figure,
    sweep_config_for,
)
from . import paper_examples

__all__ = [
    "FIGURES",
    "FULL_VIEW_COUNTS",
    "QUICK_VIEW_COUNTS",
    "SweepConfig",
    "SweepPoint",
    "format_points",
    "paper_examples",
    "print_figure",
    "run_figure",
    "run_sweep",
    "sweep_config_for",
    "write_csv",
]
