"""Drivers regenerating every figure of the paper's Section 7.

Each figure name maps to a sweep configuration; running a driver prints
the same series the paper plots:

* **fig6a / fig6b** — star queries: time to generate all GMRs vs. number
  of views (all variables distinguished / one nondistinguished).
* **fig7a / fig7b** — star queries: number of view equivalence classes;
  number of view tuples vs. representative view-tuple classes.
* **fig8a / fig8b** — chain queries: time vs. number of views.
* **fig9a / fig9b** — chain queries: equivalence-class counts.

Usage::

    python -m repro.experiments.figures fig6a
    python -m repro.experiments.figures all --full   # paper-scale axis
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .harness import SweepConfig, SweepPoint, format_points, run_sweep, write_csv

#: Paper-scale x-axis (Figures 6-9 run 100..1000 views).
FULL_VIEW_COUNTS = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)
#: Abbreviated axis for tests/benchmarks.
QUICK_VIEW_COUNTS = (50, 100, 200, 400)

#: The pool sizes are unpublished knobs of the paper's generator; these
#: values make the class-count curves saturate in the paper's range (see
#: EXPERIMENTS.md).
STAR_RELATIONS = 13
CHAIN_RELATIONS = 40

FIGURES: dict[str, dict] = {
    "fig6a": {"shape": "star", "num_relations": STAR_RELATIONS,
              "nondistinguished": 0, "metric": "time",
              "caption": "star, all distinguished: time for all GMRs"},
    "fig6b": {"shape": "star", "num_relations": STAR_RELATIONS,
              "nondistinguished": 1, "metric": "time",
              "caption": "star, 1 nondistinguished: time for all GMRs"},
    "fig7a": {"shape": "star", "num_relations": STAR_RELATIONS,
              "nondistinguished": 0, "metric": "view_classes",
              "caption": "star: number of view equivalence classes"},
    "fig7b": {"shape": "star", "num_relations": STAR_RELATIONS,
              "nondistinguished": 0, "metric": "tuple_classes",
              "caption": "star: view tuples vs. representative classes"},
    "fig8a": {"shape": "chain", "num_relations": CHAIN_RELATIONS,
              "nondistinguished": 0, "metric": "time",
              "caption": "chain, all distinguished: time for all GMRs"},
    "fig8b": {"shape": "chain", "num_relations": CHAIN_RELATIONS,
              "nondistinguished": 1, "metric": "time",
              "caption": "chain, 1 nondistinguished: time for all GMRs"},
    "fig9a": {"shape": "chain", "num_relations": CHAIN_RELATIONS,
              "nondistinguished": 0, "metric": "view_classes",
              "caption": "chain: number of view equivalence classes"},
    "fig9b": {"shape": "chain", "num_relations": CHAIN_RELATIONS,
              "nondistinguished": 0, "metric": "tuple_classes",
              "caption": "chain: view tuples vs. representative classes"},
}


def sweep_config_for(
    figure: str,
    view_counts: Sequence[int] | None = None,
    queries_per_point: int = 40,
    seed: int = 1,
) -> SweepConfig:
    """The sweep configuration behind a figure name."""
    try:
        spec = FIGURES[figure]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise ValueError(f"unknown figure {figure!r}; known: {known}") from None
    return SweepConfig(
        shape=spec["shape"],
        num_relations=spec["num_relations"],
        nondistinguished=spec["nondistinguished"],
        view_counts=tuple(view_counts or QUICK_VIEW_COUNTS),
        queries_per_point=queries_per_point,
        seed=seed,
    )


def run_figure(
    figure: str,
    view_counts: Sequence[int] | None = None,
    queries_per_point: int = 40,
    seed: int = 1,
    workers: int = 1,
) -> list[SweepPoint]:
    """Run the sweep behind one figure and return its points."""
    return run_sweep(
        sweep_config_for(figure, view_counts, queries_per_point, seed),
        workers=workers,
    )


def print_figure(points: Sequence[SweepPoint], figure: str) -> None:
    """Print one figure's series in the same terms the paper plots."""
    spec = FIGURES[figure]
    print(f"== {figure}: {spec['caption']} ==")
    metric = spec["metric"]
    if metric == "time":
        print(f"{'views':>6} {'mean time (ms)':>15} {'max time (ms)':>14}")
        for p in points:
            print(f"{p.num_views:>6} {p.mean_time_ms:>15.1f} {p.max_time_ms:>14.1f}")
    elif metric == "view_classes":
        print(f"{'views':>6} {'view equivalence classes':>25}")
        for p in points:
            print(f"{p.num_views:>6} {p.mean_view_classes:>25.1f}")
    else:  # tuple_classes
        print(
            f"{'views':>6} {'view tuples':>12} {'tuple classes':>14} "
            f"{'maximal classes':>16}"
        )
        for p in points:
            print(
                f"{p.num_views:>6} {p.mean_total_view_tuples:>12.1f} "
                f"{p.mean_view_tuple_classes:>14.1f} "
                f"{p.mean_maximal_tuple_classes:>16.1f}"
            )
    print()
    print(format_points(points))
    print()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: regenerate one figure or all of them."""
    parser = argparse.ArgumentParser(
        description="Reproduce the Section 7 figures of Li/Afrati/Ullman 2001."
    )
    parser.add_argument(
        "figure",
        help="figure id (fig6a, fig6b, fig7a, fig7b, fig8a, fig8b, "
        "fig9a, fig9b) or 'all'",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's 100..1000 view axis (slower)",
    )
    parser.add_argument(
        "--queries", type=int, default=None,
        help="queries averaged per point (paper: 40; quick default: 10)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write <figure>.csv files into this directory",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for each sweep point (0 = one per CPU)",
    )
    args = parser.parse_args(argv)

    view_counts = FULL_VIEW_COUNTS if args.full else QUICK_VIEW_COUNTS
    queries = args.queries if args.queries else (40 if args.full else 10)
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        points = run_figure(
            name, view_counts, queries, args.seed, args.workers
        )
        print_figure(points, name)
        if args.csv:
            import os

            os.makedirs(args.csv, exist_ok=True)
            write_csv(points, os.path.join(args.csv, f"{name}.csv"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
