"""Every worked example of the paper, as reusable fixtures.

These are shared by the test suite, the runnable examples, and the
benchmark harness, so the paper's claims are checked against one single
encoding of each example.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.parser import parse_query
from ..datalog.query import ConjunctiveQuery
from ..engine.database import Database
from ..views.view import ViewCatalog


@dataclass(frozen=True)
class CarLocPart:
    """Example 1.1: the running car-loc-part example."""

    query: ConjunctiveQuery
    views: ViewCatalog
    p1: ConjunctiveQuery
    p2: ConjunctiveQuery
    p3: ConjunctiveQuery
    p4: ConjunctiveQuery
    p5: ConjunctiveQuery


def car_loc_part() -> CarLocPart:
    """The car/loc/part schema, query Q, views V1-V5, rewritings P1-P5.

    The constant ``anderson`` is abbreviated ``a`` as in the paper.
    """
    query = parse_query(
        "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)"
    )
    views = ViewCatalog(
        [
            "v1(M, D, C) :- car(M, D), loc(D, C)",
            "v2(S, M, C) :- part(S, M, C)",
            "v3(S) :- car(M, a), loc(a, C), part(S, M, C)",
            "v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C)",
            "v5(M, D, C) :- car(M, D), loc(D, C)",
        ]
    )
    return CarLocPart(
        query=query,
        views=views,
        p1=parse_query("q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)"),
        p2=parse_query("q1(S, C) :- v1(M, a, C), v2(S, M, C)"),
        p3=parse_query("q1(S, C) :- v3(S), v1(M, a, C), v2(S, M, C)"),
        p4=parse_query("q1(S, C) :- v4(M, a, C, S)"),
        p5=parse_query("q1(S, C) :- v1(M, a, C1), v5(M1, a, C), v2(S, M, C)"),
    )


def car_loc_part_database(
    dealers: int = 4, makes: int = 5, cities: int = 6, stores: int = 8
) -> Database:
    """A small deterministic base instance for the car-loc-part schema.

    Built so that view V3 is *selective* (few stores qualify), which is
    the paper's motivation for filtering subgoals: P3 can beat P2 under M2.
    """
    database = Database()
    for make in range(makes):
        for dealer in range(dealers):
            if (make + dealer) % 2 == 0:
                database.add_fact("car", (f"m{make}", "a" if dealer == 0 else f"d{dealer}"))
    for dealer in range(dealers):
        for city in range(cities):
            if (dealer * 3 + city) % 3 == 0:
                database.add_fact("loc", ("a" if dealer == 0 else f"d{dealer}", f"c{city}"))
    for store in range(stores):
        for make in range(makes):
            for city in range(cities):
                if (store + 2 * make + city) % 7 == 0:
                    database.add_fact("part", (f"s{store}", f"m{make}", f"c{city}"))
    return database


def car_loc_part_selective_database() -> Database:
    """A base instance on which the V3 filter *strictly* pays off.

    Anderson sells many makes across many cities (``v1`` is large) and
    most stores sell parts in *other* cities (``v2`` is large but barely
    joins), while only two stores satisfy V3.  Joining the tiny ``v3``
    first shrinks every intermediate relation, so the optimizer's filter
    pass turns P2 into P3 with a strictly lower M2 cost — the paper's
    Section 5.1 motivation.
    """
    database = Database()
    for make in range(25):
        database.add_fact("car", (f"m{make}", "a"))
    for city in range(20):
        database.add_fact("loc", ("a", f"c{city}"))
    for store in range(50):
        database.add_fact(
            "part", (f"s{store}", f"m{store % 25}", f"cx{store % 9}")
        )
    database.add_fact("part", ("s0", "m0", "c0"))
    database.add_fact("part", ("s1", "m1", "c1"))
    return database


@dataclass(frozen=True)
class LmrChain:
    """Example 3.1: a chain of LMRs ``P1 ⊏ P2 ⊏ … ⊏ Pm``."""

    query: ConjunctiveQuery
    views: ViewCatalog
    rewritings: tuple[ConjunctiveQuery, ...]


def example_31(m: int = 3) -> LmrChain:
    """Example 3.1 generalized to ``m`` base relations.

    The view joins all ``e_i`` on a shared variable; ``P_j`` uses ``j``
    view literals, each contributing one covered subgoal, forming a
    containment chain of LMRs of length ``m``.
    """
    if m < 1:
        raise ValueError("need at least one relation")
    body = ", ".join(f"e{i}(X{i}, c)" for i in range(1, m + 1))
    head_vars = ", ".join(f"X{i}" for i in range(1, m + 1))
    query = parse_query(f"q({head_vars}) :- {body}")
    view_body = ", ".join(f"e{i}(X{i}, W)" for i in range(1, m + 1))
    views = ViewCatalog([f"v({head_vars}, W) :- {view_body}"])

    rewritings = []
    for j in range(1, m + 1):
        # P_j uses j literals.  As in the paper, the first literal supplies
        # the first m-j+1 variables and each later literal supplies exactly
        # one of the remaining ones; unsupplied positions get fresh
        # variables private to their literal.
        literals = []
        for use in range(j):
            supplied = (
                range(1, m - j + 2) if use == 0 else [m - j + 1 + use]
            )
            supplied_set = set(supplied)
            args = [
                f"X{i}" if i in supplied_set else f"F{use}_{i}"
                for i in range(1, m + 1)
            ]
            literals.append(f"v({', '.join(args)}, c)")
        rewritings.append(parse_query(f"q({head_vars}) :- {', '.join(literals)}"))
    return LmrChain(query, views, tuple(rewritings))


@dataclass(frozen=True)
class GmrNotCmr:
    """The Section 3.2 example showing a GMR that is not a CMR."""

    query: ConjunctiveQuery
    views: ViewCatalog
    p1: ConjunctiveQuery
    p2: ConjunctiveQuery


def gmr_not_cmr() -> GmrNotCmr:
    """``Q: q(X) :- e(X, X)`` with ``V: v(A, B) :- e(A, A), e(A, B)``."""
    return GmrNotCmr(
        query=parse_query("q(X) :- e(X, X)"),
        views=ViewCatalog(["v(A, B) :- e(A, A), e(A, B)"]),
        p1=parse_query("q(X) :- v(X, B)"),
        p2=parse_query("q(X) :- v(X, X)"),
    )


@dataclass(frozen=True)
class Example41:
    """Example 4.1 / Table 2: tuple-cores of three view tuples."""

    query: ConjunctiveQuery
    views: ViewCatalog


def example_41() -> Example41:
    """``q(X,Y) :- a(X,Z), a(Z,Z), b(Z,Y)`` with views V1, V2."""
    return Example41(
        query=parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)"),
        views=ViewCatalog(
            [
                "v1(A, B) :- a(A, B), a(B, B)",
                "v2(C, D) :- a(C, E), b(C, D)",
            ]
        ),
    )


@dataclass(frozen=True)
class Example42:
    """Example 4.2: CoreCover vs. MiniCon on the k-path query."""

    query: ConjunctiveQuery
    views: ViewCatalog
    k: int


def example_42(k: int = 3) -> Example42:
    """The Section 4.3 comparison query with ``2k`` subgoals.

    View ``v`` is the whole query body; views ``v1 … v_{k-1}`` each cover
    one ``a_i/b_i`` pair.  CoreCover finds the single-literal GMR; MiniCon
    also produces combinations with redundant subgoals.
    """
    if k < 2:
        raise ValueError("the example needs k >= 2")
    body = ", ".join(f"a{i}(X, Z{i}), b{i}(Z{i}, Y)" for i in range(1, k + 1))
    query = parse_query(f"q(X, Y) :- {body}")
    definitions = [f"v(X, Y) :- {body}"]
    for i in range(1, k):
        definitions.append(f"v{i}(X, Y) :- a{i}(X, Z{i}), b{i}(Z{i}, Y)")
    return Example42(query, ViewCatalog(definitions), k)


@dataclass(frozen=True)
class Example61:
    """Example 6.1 / Figure 5: attribute dropping under cost model M3."""

    query: ConjunctiveQuery
    views: ViewCatalog
    base: Database
    p1: ConjunctiveQuery
    p2: ConjunctiveQuery


def example_61() -> Example61:
    """The r/s/t schema with the exact Figure 5 instance.

    ``r`` is the self-loop on node 1 plus nothing else diagonal beyond it;
    ``s`` holds the diagonal pairs on the even nodes; ``t`` the odd→even
    edges.  Materializing V1/V2 gives the paper's view relations
    (``v1 = {⟨1,2⟩, ⟨1,4⟩, ⟨1,6⟩, ⟨1,8⟩}``, ``v2 = {⟨1,2⟩, ⟨3,4⟩,
    ⟨5,6⟩, ⟨7,8⟩}``).
    """
    base = Database.from_dict(
        {
            "r": [(1, 1)],
            "s": [(2, 2), (4, 4), (6, 6), (8, 8)],
            "t": [(1, 2), (3, 4), (5, 6), (7, 8)],
        }
    )
    return Example61(
        query=parse_query("q(A) :- r(A, A), t(A, B), s(B, B)"),
        views=ViewCatalog(
            [
                "v1(A, B) :- r(A, A), s(B, B)",
                "v2(A, B) :- t(A, B), s(B, B)",
            ]
        ),
        base=base,
        p1=parse_query("q(A) :- v1(A, B), v2(A, C)"),
        p2=parse_query("q(A) :- v1(A, B), v2(A, B)"),
    )


@dataclass(frozen=True)
class Section8Ucq:
    """The Section 8 example with a built-in ``≤`` predicate."""

    query: ConjunctiveQuery
    views: ViewCatalog
    union_rewriting: tuple[ConjunctiveQuery, ConjunctiveQuery]
    single_rewriting: ConjunctiveQuery


def section8_ucq() -> Section8Ucq:
    """``q(X,Y,U,W) :- p(X,Y), r(U,W), r(W,U)`` with an inequality view."""
    query = parse_query("q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)")
    views = ViewCatalog(
        [
            "v1(A, B, C, D) :- p(A, B), r(C, D), C <= D",
            "v2(E, F) :- r(E, F)",
        ]
    )
    union_rewriting = (
        parse_query("q(X, Y, U, W) :- v1(X, Y, U, W), v2(W, U)"),
        parse_query("q(X, Y, U, W) :- v1(X, Y, W, U), v2(U, W)"),
    )
    single_rewriting = parse_query(
        "q(X, Y, U, W) :- v1(X, Y, C, D), v2(U, W), v2(W, U)"
    )
    return Section8Ucq(query, views, union_rewriting, single_rewriting)
