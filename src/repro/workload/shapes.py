"""Query/view shape builders: star, chain, and random (Section 7 / [23]).

The paper's generator takes the number of base relations, attributes,
views, subgoals per view (1-3), subgoals per query (8), the shape, and the
distinguished-variable policy.  The builders below construct single
queries/views; :mod:`repro.workload.generator` assembles whole workloads.

Conventions:

* all base relations are binary (as stated for the chain experiments; we
  keep stars binary too, sharing the center variable in position 0);
* **star**: subgoal ``r_i(X0, X_i)`` — every subgoal shares the center
  ``X0``;
* **chain**: subgoal ``r_i(X_{i-1}, X_i)`` over consecutive relations;
* **random**: each subgoal picks a random relation and two random
  variables from a small pool.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery
from ..datalog.terms import Variable
from ..views.view import View


def relation_name(index: int) -> str:
    """The canonical name of the i-th base relation."""
    return f"r{index}"


# -- star ---------------------------------------------------------------------

def star_query(
    relation_indices: Sequence[int],
    head_name: str = "q",
    nondistinguished: int = 0,
) -> ConjunctiveQuery:
    """A star query over the given relations, center variable ``X0``.

    ``nondistinguished`` satellite variables (from the last subgoals) are
    left out of the head, mirroring the Figure 6(b) configuration.
    """
    center = Variable("X0")
    satellites = [Variable(f"X{i + 1}") for i in range(len(relation_indices))]
    body = tuple(
        Atom(relation_name(r), (center, satellites[i]))
        for i, r in enumerate(relation_indices)
    )
    head_vars: list[Variable] = [center] + satellites
    if nondistinguished:
        head_vars = head_vars[: len(head_vars) - nondistinguished]
    return ConjunctiveQuery(Atom(head_name, tuple(head_vars)), body)


def star_view(
    relation_indices: Sequence[int],
    name: str,
    nondistinguished: int = 0,
    rng: random.Random | None = None,
) -> View:
    """A star-shaped view over the given relations.

    With ``nondistinguished > 0``, that many randomly chosen satellite
    variables are dropped from the head (the center always stays, so the
    view remains joinable).
    """
    center = Variable("C")
    satellites = [Variable(f"Y{i}") for i in range(len(relation_indices))]
    body = tuple(
        Atom(relation_name(r), (center, satellites[i]))
        for i, r in enumerate(relation_indices)
    )
    head_vars = [center] + satellites
    if nondistinguished:
        rng = rng or random.Random(0)
        removable = satellites[:]
        rng.shuffle(removable)
        removed = set(removable[:nondistinguished])
        head_vars = [v for v in head_vars if v not in removed]
    return View(ConjunctiveQuery(Atom(name, tuple(head_vars)), body))


# -- chain -----------------------------------------------------------------------

def chain_query(
    start: int,
    length: int,
    head_name: str = "q",
    nondistinguished: int = 0,
) -> ConjunctiveQuery:
    """A chain query over relations ``r_start .. r_{start+length-1}``.

    All chain variables are distinguished by default; with
    ``nondistinguished > 0`` that many *interior* variables (never the two
    endpoints) are dropped from the head.
    """
    variables = [Variable(f"X{i}") for i in range(length + 1)]
    body = tuple(
        Atom(relation_name(start + i), (variables[i], variables[i + 1]))
        for i in range(length)
    )
    head_vars = list(variables)
    if nondistinguished:
        interior = variables[1:-1]
        if nondistinguished > len(interior):
            raise ValueError("cannot drop more interior variables than exist")
        removed = set(interior[:nondistinguished])
        head_vars = [v for v in head_vars if v not in removed]
    return ConjunctiveQuery(Atom(head_name, tuple(head_vars)), body)


def chain_view(
    start: int,
    length: int,
    name: str,
    nondistinguished: int = 0,
    rng: random.Random | None = None,
) -> View:
    """A chain view over ``length`` consecutive relations from *start*.

    As in the paper's setup, single-subgoal views keep both variables
    distinguished; longer views may drop interior variables.
    """
    variables = [Variable(f"Y{i}") for i in range(length + 1)]
    body = tuple(
        Atom(relation_name(start + i), (variables[i], variables[i + 1]))
        for i in range(length)
    )
    head_vars = list(variables)
    interior = variables[1:-1]
    if nondistinguished and interior:
        rng = rng or random.Random(0)
        removable = interior[:]
        rng.shuffle(removable)
        removed = set(removable[:nondistinguished])
        head_vars = [v for v in head_vars if v not in removed]
    return View(ConjunctiveQuery(Atom(name, tuple(head_vars)), body))


# -- cycle --------------------------------------------------------------------

def cycle_query(
    relation_indices: Sequence[int],
    head_name: str = "q",
    nondistinguished: int = 0,
) -> ConjunctiveQuery:
    """A cycle query: ``r_i(X_i, X_{i+1})`` with the last edge closing
    back to ``X_0`` (one of the [23] shapes the paper's generator follows).
    """
    n = len(relation_indices)
    if n < 2:
        raise ValueError("a cycle needs at least two relations")
    variables = [Variable(f"X{i}") for i in range(n)]
    body = tuple(
        Atom(
            relation_name(r),
            (variables[i], variables[(i + 1) % n]),
        )
        for i, r in enumerate(relation_indices)
    )
    head_vars = list(variables)
    if nondistinguished:
        if nondistinguished >= n:
            raise ValueError("cannot drop every cycle variable")
        head_vars = head_vars[: n - nondistinguished]
    return ConjunctiveQuery(Atom(head_name, tuple(head_vars)), body)


def cycle_view(
    relation_indices: Sequence[int],
    start: int,
    length: int,
    name: str,
    nondistinguished: int = 0,
    rng: random.Random | None = None,
) -> View:
    """A view over a contiguous *arc* of the cycle's relations.

    The arc may wrap around; like chain views, interior variables may be
    made nondistinguished while the endpoints stay in the head.
    """
    n = len(relation_indices)
    if not 1 <= length <= n:
        raise ValueError("arc length must be between 1 and the cycle size")
    variables = [Variable(f"Y{i}") for i in range(length + 1)]
    body = tuple(
        Atom(
            relation_name(relation_indices[(start + i) % n]),
            (variables[i], variables[i + 1]),
        )
        for i in range(length)
    )
    head_vars = list(variables)
    interior = variables[1:-1]
    if nondistinguished and interior:
        rng = rng or random.Random(0)
        removable = interior[:]
        rng.shuffle(removable)
        removed = set(removable[:nondistinguished])
        head_vars = [v for v in head_vars if v not in removed]
    return View(ConjunctiveQuery(Atom(name, tuple(head_vars)), body))


# -- random ---------------------------------------------------------------------

def random_query(
    num_relations: int,
    num_subgoals: int,
    rng: random.Random,
    head_name: str = "q",
    variable_pool: int | None = None,
    nondistinguished: int = 0,
) -> ConjunctiveQuery:
    """A random binary-join query: each subgoal picks a relation and vars."""
    pool = variable_pool or num_subgoals + 2
    variables = [Variable(f"X{i}") for i in range(pool)]
    body = []
    for _ in range(num_subgoals):
        relation = relation_name(rng.randrange(num_relations))
        left, right = rng.choice(variables), rng.choice(variables)
        body.append(Atom(relation, (left, right)))
    used: list[Variable] = []
    for atom in body:
        for variable in atom.variables():
            if variable not in used:
                used.append(variable)
    head_vars = used[: max(1, len(used) - nondistinguished)]
    return ConjunctiveQuery(Atom(head_name, tuple(head_vars)), tuple(body))


def random_view(
    num_relations: int,
    num_subgoals: int,
    name: str,
    rng: random.Random,
    variable_pool: int | None = None,
    nondistinguished: int = 0,
) -> View:
    """A random binary-join view (head variables deduplicated)."""
    query = random_query(
        num_relations,
        num_subgoals,
        rng,
        head_name=name,
        variable_pool=variable_pool,
        nondistinguished=nondistinguished,
    )
    return View(query)
