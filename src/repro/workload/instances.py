"""Random base-database instances for the M2/M3 experiments.

The paper's M2/M3 sections reason about the *sizes* of view relations and
intermediate relations.  To measure those sizes exactly we generate random
base data, materialize the views over it (closed-world assumption), and
execute physical plans on the resulting view database.

Two generators are provided: a uniform-random one and a *skewed* one whose
Zipf-like key reuse produces the selective/non-selective contrasts that
make filtering subgoals (Section 5.1) and attribute drops (Section 6)
visible in costs.
"""

from __future__ import annotations

import random
from typing import Mapping

from ..datalog.query import ConjunctiveQuery
from ..engine.database import Database
from ..engine.relation import Relation


def uniform_database(
    schema: Mapping[str, int],
    tuples_per_relation: int,
    domain_size: int,
    rng: random.Random,
) -> Database:
    """Random tuples with i.i.d. uniform attribute values.

    ``schema`` maps relation names to arities.  Duplicate tuples collapse
    under set semantics, so very small domains may yield fewer than
    ``tuples_per_relation`` rows.
    """
    database = Database()
    for name, arity in schema.items():
        relation = Relation(name, arity)
        for _ in range(tuples_per_relation):
            relation.add(tuple(rng.randrange(domain_size) for _ in range(arity)))
        database.add_relation(relation)
    return database


def skewed_database(
    schema: Mapping[str, int],
    tuples_per_relation: int,
    domain_size: int,
    rng: random.Random,
    skew: float = 1.1,
) -> Database:
    """Random tuples with Zipf-skewed values (heavier reuse of small keys).

    Skewed joins produce large intermediate relations for bad orders and
    small ones for good orders, which is what cost model M2 is designed to
    distinguish.
    """
    weights = [1.0 / (rank + 1) ** skew for rank in range(domain_size)]
    values = list(range(domain_size))
    database = Database()
    for name, arity in schema.items():
        relation = Relation(name, arity)
        for _ in range(tuples_per_relation):
            relation.add(
                tuple(rng.choices(values, weights=weights)[0] for _ in range(arity))
            )
        database.add_relation(relation)
    return database


def schema_of(
    query: ConjunctiveQuery, *more: ConjunctiveQuery
) -> dict[str, int]:
    """The base schema (name -> arity) used by the given queries/definitions."""
    schema: dict[str, int] = {}
    for q in (query, *more):
        for atom in q.body:
            if atom.is_comparison:
                continue
            existing = schema.get(atom.predicate)
            if existing is not None and existing != atom.arity:
                raise ValueError(
                    f"inconsistent arity for {atom.predicate!r}: "
                    f"{existing} vs {atom.arity}"
                )
            schema[atom.predicate] = atom.arity
    return schema
