"""Workload generation: query/view shapes and random base-data instances."""

from .generator import (
    Workload,
    WorkloadConfig,
    WorkloadError,
    generate_workload,
    workload_series,
)
from .instances import schema_of, skewed_database, uniform_database
from .shapes import (
    chain_query,
    chain_view,
    cycle_query,
    cycle_view,
    random_query,
    random_view,
    relation_name,
    star_query,
    star_view,
)

__all__ = [
    "Workload",
    "WorkloadConfig",
    "WorkloadError",
    "chain_query",
    "chain_view",
    "cycle_query",
    "cycle_view",
    "generate_workload",
    "random_query",
    "random_view",
    "relation_name",
    "schema_of",
    "skewed_database",
    "star_query",
    "star_view",
    "uniform_database",
    "workload_series",
]
