"""Workload generation for the Section 7 experiments.

A workload is one query plus ``num_views`` random views of the same shape.
Following the paper: queries have 8 subgoals, views have 1-3 subgoals
chosen uniformly, 40 queries are averaged per data point, and queries
without rewritings are discarded (the generator resamples the views until
the query is rewritable, up to a configurable number of attempts).

The ``num_relations`` knob controls the base-schema pool size and thereby
the saturation level of the view-equivalence-class curves (Figures 7/9):
views are drawn from the whole pool, so many are useless for the query —
exactly as the class counts in the paper keep growing while the
*representative view tuples* stay nearly constant.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Iterator

from ..core.corecover import core_cover
from ..datalog.query import ConjunctiveQuery
from ..views.view import ViewCatalog
from . import shapes


class WorkloadError(RuntimeError):
    """Raised when no rewritable workload can be generated."""


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs mirroring the paper's query-generator parameters."""

    shape: str = "star"  # "star" | "chain" | "random"
    num_relations: int = 13
    query_subgoals: int = 8
    num_views: int = 100
    min_view_subgoals: int = 1
    max_view_subgoals: int = 3
    #: 0 = all variables distinguished (Figures 6(a)/8(a));
    #: 1 = one nondistinguished variable (Figures 6(b)/8(b)).
    nondistinguished: int = 0
    #: Probability that a view is built over the query's own relations
    #: rather than the full pool.  The paper does not publish this knob;
    #: without some locality, small view sets almost never rewrite the
    #: query (see EXPERIMENTS.md).
    view_locality: float = 0.5
    #: Probability that an eligible view actually drops a variable when
    #: ``nondistinguished`` is set (single-subgoal chain views never do,
    #: as in the paper).
    nondistinguished_rate: float = 0.5
    seed: int = 0
    require_rewritable: bool = True
    max_attempts: int = 50


@dataclass(frozen=True)
class Workload:
    """A generated query together with its view catalog."""

    query: ConjunctiveQuery
    views: ViewCatalog
    config: WorkloadConfig

    def __str__(self) -> str:
        return (
            f"Workload({self.config.shape}, |body|={len(self.query.body)}, "
            f"views={len(self.views)})"
        )


def generate_workload(config: WorkloadConfig) -> Workload:
    """Generate one workload according to *config*.

    With ``require_rewritable`` (the paper "ignored queries that did not
    have rewritings"), view sets are resampled — with fresh randomness —
    until CoreCover finds at least one rewriting.
    """
    rng = random.Random(config.seed)
    for _attempt in range(config.max_attempts):
        query, query_relations = _build_query(config, rng)
        views = _build_views(config, rng, query_relations)
        workload = Workload(query, views, config)
        if not config.require_rewritable:
            return workload
        if core_cover(query, views).has_rewriting:
            return workload
    raise WorkloadError(
        f"no rewritable {config.shape} workload found in "
        f"{config.max_attempts} attempts (seed={config.seed}); "
        "increase num_views or max_attempts"
    )


def workload_series(
    base_config: WorkloadConfig, queries: int
) -> Iterator[Workload]:
    """Yield *queries* workloads varying only the seed (one per query).

    Used by the Figure 6-9 harness, which averages 40 queries per point.
    """
    for offset in range(queries):
        yield generate_workload(
            _with_seed(base_config, base_config.seed + offset * 7919)
        )


def _with_seed(config: WorkloadConfig, seed: int) -> WorkloadConfig:
    return dataclasses.replace(config, seed=seed)


def _build_query(
    config: WorkloadConfig, rng: random.Random
) -> tuple[ConjunctiveQuery, tuple[int, ...]]:
    """Build the query and report which base relations it uses."""
    if config.shape == "star":
        indices = rng.sample(range(config.num_relations), config.query_subgoals)
        query = shapes.star_query(
            indices, nondistinguished=config.nondistinguished
        )
        return query, tuple(indices)
    if config.shape == "chain":
        start = rng.randrange(
            max(1, config.num_relations - config.query_subgoals + 1)
        )
        query = shapes.chain_query(
            start, config.query_subgoals, nondistinguished=config.nondistinguished
        )
        return query, tuple(range(start, start + config.query_subgoals))
    if config.shape == "cycle":
        indices = rng.sample(range(config.num_relations), config.query_subgoals)
        query = shapes.cycle_query(
            indices, nondistinguished=config.nondistinguished
        )
        return query, tuple(indices)
    if config.shape == "random":
        query = shapes.random_query(
            config.num_relations,
            config.query_subgoals,
            rng,
            nondistinguished=config.nondistinguished,
        )
        return query, tuple(range(config.num_relations))
    raise ValueError(f"unknown workload shape {config.shape!r}")


def _build_views(
    config: WorkloadConfig,
    rng: random.Random,
    query_relations: tuple[int, ...],
) -> ViewCatalog:
    catalog = ViewCatalog()
    for index in range(config.num_views):
        size = rng.randint(config.min_view_subgoals, config.max_view_subgoals)
        name = f"v{index}"
        local = rng.random() < config.view_locality
        drops = 0
        if config.nondistinguished and rng.random() < config.nondistinguished_rate:
            drops = config.nondistinguished
        if config.shape == "star":
            pool = list(query_relations) if local else range(config.num_relations)
            relations = rng.sample(pool, min(size, len(list(pool))))
            view = shapes.star_view(relations, name, nondistinguished=drops, rng=rng)
        elif config.shape == "chain":
            if local:
                window_start = query_relations[0]
                window_size = len(query_relations)
                start = window_start + rng.randrange(window_size - size + 1)
            else:
                start = rng.randrange(config.num_relations - size + 1)
            view = shapes.chain_view(
                start, size, name,
                nondistinguished=drops if size > 1 else 0,
                rng=rng,
            )
        elif config.shape == "cycle":
            if local:
                # An arc of the query's own relation ring.
                start = rng.randrange(len(query_relations))
                view = shapes.cycle_view(
                    query_relations, start, min(size, len(query_relations)),
                    name,
                    nondistinguished=drops if size > 1 else 0,
                    rng=rng,
                )
            else:
                start = rng.randrange(config.num_relations - size + 1)
                view = shapes.chain_view(
                    start, size, name,
                    nondistinguished=drops if size > 1 else 0,
                    rng=rng,
                )
        elif config.shape == "random":
            view = shapes.random_view(
                config.num_relations, size, name, rng, nondistinguished=drops
            )
        else:
            raise ValueError(f"unknown workload shape {config.shape!r}")
        catalog.add(view)
    return catalog
