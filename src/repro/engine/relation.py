"""In-memory relations: named sets of fixed-arity tuples.

The engine is deliberately simple — set semantics, hashable Python values
as the domain — because every use in this package (canonical databases,
view materialization, physical-plan execution, cost measurement) needs
exact answers on small-to-medium data rather than raw throughput.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator, Sequence


class ArityError(ValueError):
    """Raised when a tuple's width disagrees with the relation's arity."""


class Relation:
    """A named relation: an arity and a set of tuples.

    Tuples are plain Python tuples of hashable values.  The relation keeps
    set semantics (no duplicates), matching the paper's conjunctive-query
    setting.
    """

    __slots__ = ("name", "arity", "_tuples")

    def __init__(
        self,
        name: str,
        arity: int,
        tuples: Iterable[Sequence[object]] = (),
    ) -> None:
        if arity < 0:
            raise ArityError(f"arity must be nonnegative, got {arity}")
        self.name = name
        self.arity = arity
        self._tuples: set[tuple[object, ...]] = set()
        for row in tuples:
            self.add(row)

    # -- mutation -----------------------------------------------------------
    def add(self, row: Sequence[object]) -> None:
        """Insert one tuple (duplicates are silently absorbed)."""
        row = tuple(row)
        if len(row) != self.arity:
            raise ArityError(
                f"relation {self.name}/{self.arity} cannot hold a "
                f"{len(row)}-tuple {row!r}"
            )
        self._tuples.add(row)

    def add_all(self, rows: Iterable[Sequence[object]]) -> None:
        """Insert many tuples."""
        for row in rows:
            self.add(row)

    # -- access ----------------------------------------------------------------
    @property
    def tuples(self) -> AbstractSet[tuple[object, ...]]:
        """A read-only view of the tuple set."""
        return frozenset(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple[object, ...]]:
        return iter(self._tuples)

    def __contains__(self, row: object) -> bool:
        return row in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, rows={len(self)})"

    def copy(self, name: str | None = None) -> "Relation":
        """A shallow copy, optionally renamed."""
        return Relation(name or self.name, self.arity, self._tuples)

    def index_on(self, positions: Sequence[int]) -> dict[tuple[object, ...], list[tuple[object, ...]]]:
        """A hash index mapping projected key values to matching tuples.

        Used by the hash joins in :mod:`repro.engine.evaluate` and the plan
        executor.
        """
        index: dict[tuple[object, ...], list[tuple[object, ...]]] = {}
        for row in self._tuples:
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        return index
