"""In-memory relational engine: relations, databases, CQ evaluation."""

from .database import Database, UnknownRelationError
from .evaluate import evaluate, evaluate_bindings
from .materialize import materialize_query, materialize_views
from .operators import (
    HashJoin,
    NestedLoopJoin,
    Project,
    Scan,
    Select,
    build_left_deep_tree,
)
from .relation import ArityError, Relation

__all__ = [
    "ArityError",
    "Database",
    "HashJoin",
    "NestedLoopJoin",
    "Project",
    "Scan",
    "Select",
    "build_left_deep_tree",
    "Relation",
    "UnknownRelationError",
    "evaluate",
    "evaluate_bindings",
    "materialize_query",
    "materialize_views",
]
