"""Volcano-style physical operators over variable-schema streams.

The evaluator in :mod:`repro.engine.evaluate` is a monolithic pipelined
join; this module exposes the same capability as composable iterator
operators — the execution model of the System-R lineage the paper's
optimizer discussion assumes [22].  Each operator produces rows under an
explicit *schema* (a tuple of variables), so plans over rewritings map
1:1 onto operator trees:

* :class:`Scan` — read a relation, binding its columns to plan variables
  (applying constant and repeated-variable selections);
* :class:`Select` — filter by a comparison predicate;
* :class:`Project` — keep a subset of columns (set semantics);
* :class:`HashJoin` — equi-join two inputs on their shared variables;
* :class:`NestedLoopJoin` — the fallback join, same semantics.

Operators are deterministic and re-iterable; ``rows()`` materializes the
input streams it needs (this is an in-memory engine, not a paging one —
page behaviour is modeled separately in :mod:`repro.cost.iomodel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol, Sequence

from ..datalog.atoms import Atom
from ..datalog.terms import Constant, Variable, is_variable
from .database import Database
from .evaluate import _COMPARATORS  # shared comparison semantics
from .relation import Relation


class Operator(Protocol):
    """A physical operator: a schema plus a row stream."""

    @property
    def schema(self) -> tuple[Variable, ...]: ...

    def rows(self) -> Iterator[tuple[object, ...]]: ...


@dataclass(frozen=True)
class Scan:
    """Bind a relation's columns to the variables of a subgoal atom.

    Constants and repeated variables in the atom become selections, as in
    the paper's treatment of view subgoals.
    """

    relation: Relation
    atom: Atom

    def __post_init__(self) -> None:
        if self.relation.arity != self.atom.arity:
            raise ValueError(
                f"atom {self.atom} does not fit relation "
                f"{self.relation.name}/{self.relation.arity}"
            )

    @property
    def schema(self) -> tuple[Variable, ...]:
        seen: dict[Variable, None] = {}
        for arg in self.atom.args:
            if is_variable(arg):
                seen.setdefault(arg, None)
        return tuple(seen)

    def rows(self) -> Iterator[tuple[object, ...]]:
        positions: dict[Variable, int] = {}
        constant_checks: list[tuple[int, object]] = []
        equality_checks: list[tuple[int, int]] = []
        for index, arg in enumerate(self.atom.args):
            if isinstance(arg, Constant):
                constant_checks.append((index, arg.value))
            elif arg in positions:
                equality_checks.append((positions[arg], index))
            else:
                positions[arg] = index
        out_positions = [positions[v] for v in self.schema]
        for row in self.relation:
            if all(row[p] == v for p, v in constant_checks) and all(
                row[a] == row[b] for a, b in equality_checks
            ):
                yield tuple(row[p] for p in out_positions)


@dataclass(frozen=True)
class Select:
    """Filter rows by a binary comparison over schema variables/constants."""

    source: Operator
    comparison: Atom

    def __post_init__(self) -> None:
        if not self.comparison.is_comparison:
            raise ValueError(f"{self.comparison} is not a comparison atom")
        for arg in self.comparison.args:
            if is_variable(arg) and arg not in self.source.schema:
                raise ValueError(
                    f"comparison variable {arg} is not in the input schema"
                )

    @property
    def schema(self) -> tuple[Variable, ...]:
        return self.source.schema

    def rows(self) -> Iterator[tuple[object, ...]]:
        operator = _COMPARATORS[self.comparison.predicate]
        left_arg, right_arg = self.comparison.args
        schema = self.source.schema

        def value(arg, row):
            if is_variable(arg):
                return row[schema.index(arg)]
            return arg.value

        for row in self.source.rows():
            if operator(value(left_arg, row), value(right_arg, row)):
                yield row


@dataclass(frozen=True)
class Project:
    """Duplicate-eliminating projection onto a subset of the schema."""

    source: Operator
    keep: tuple[Variable, ...]

    def __post_init__(self) -> None:
        missing = [v for v in self.keep if v not in self.source.schema]
        if missing:
            raise ValueError(f"cannot project onto unknown columns {missing}")

    @property
    def schema(self) -> tuple[Variable, ...]:
        return self.keep

    def rows(self) -> Iterator[tuple[object, ...]]:
        positions = [self.source.schema.index(v) for v in self.keep]
        seen: set[tuple[object, ...]] = set()
        for row in self.source.rows():
            projected = tuple(row[p] for p in positions)
            if projected not in seen:
                seen.add(projected)
                yield projected


def _join_schema(
    left: Operator, right: Operator
) -> tuple[tuple[Variable, ...], list[Variable]]:
    shared = [v for v in right.schema if v in left.schema]
    combined = left.schema + tuple(
        v for v in right.schema if v not in left.schema
    )
    return combined, shared


@dataclass(frozen=True)
class HashJoin:
    """Equi-join on all shared variables (natural join); builds on the right."""

    left: Operator
    right: Operator

    @property
    def schema(self) -> tuple[Variable, ...]:
        return _join_schema(self.left, self.right)[0]

    def rows(self) -> Iterator[tuple[object, ...]]:
        _combined, shared = _join_schema(self.left, self.right)
        right_schema = self.right.schema
        key_right = [right_schema.index(v) for v in shared]
        extra_right = [
            i for i, v in enumerate(right_schema) if v not in self.left.schema
        ]
        index: dict[tuple[object, ...], list[tuple[object, ...]]] = {}
        for row in self.right.rows():
            key = tuple(row[p] for p in key_right)
            index.setdefault(key, []).append(tuple(row[p] for p in extra_right))

        left_schema = self.left.schema
        key_left = [left_schema.index(v) for v in shared]
        for row in self.left.rows():
            key = tuple(row[p] for p in key_left)
            for extra in index.get(key, ()):
                yield row + extra


@dataclass(frozen=True)
class NestedLoopJoin:
    """The same natural join computed by nested loops (no hash index)."""

    left: Operator
    right: Operator

    @property
    def schema(self) -> tuple[Variable, ...]:
        return _join_schema(self.left, self.right)[0]

    def rows(self) -> Iterator[tuple[object, ...]]:
        _combined, shared = _join_schema(self.left, self.right)
        left_schema, right_schema = self.left.schema, self.right.schema
        key_left = [left_schema.index(v) for v in shared]
        key_right = [right_schema.index(v) for v in shared]
        extra_right = [
            i for i, v in enumerate(right_schema) if v not in left_schema
        ]
        right_rows = list(self.right.rows())
        for left_row in self.left.rows():
            left_key = tuple(left_row[p] for p in key_left)
            for right_row in right_rows:
                if tuple(right_row[p] for p in key_right) == left_key:
                    yield left_row + tuple(right_row[p] for p in extra_right)


def build_left_deep_tree(
    atoms: Sequence[Atom],
    database: Database,
    join_class: type = HashJoin,
) -> Operator:
    """A left-deep operator tree scanning/joining *atoms* in order.

    Comparison atoms become :class:`Select` operators applied as soon as
    their variables are available.
    """
    relational = [a for a in atoms if not a.is_comparison]
    comparisons = [a for a in atoms if a.is_comparison]
    if not relational:
        raise ValueError("need at least one relational atom")

    def with_ready_selections(operator: Operator) -> Operator:
        nonlocal comparisons
        remaining = []
        for comparison in comparisons:
            if comparison.variable_set() <= set(operator.schema):
                operator = Select(operator, comparison)
            else:
                remaining.append(comparison)
        comparisons = remaining
        return operator

    current: Operator = Scan(
        database.relation(relational[0].predicate), relational[0]
    )
    current = with_ready_selections(current)
    for atom in relational[1:]:
        scan = Scan(database.relation(atom.predicate), atom)
        current = join_class(current, scan)
        current = with_ready_selections(current)
    if comparisons:
        unresolved = ", ".join(str(c) for c in comparisons)
        raise ValueError(f"unbound comparison variables in: {unresolved}")
    return current
