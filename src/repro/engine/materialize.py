"""View materialization under the closed-world assumption.

In the paper's closed-world model (Section 1), view relations are
*computed from* the base relations.  Materializing a set of view
definitions over a base database therefore yields a *view database* on
which rewritings are executed and whose relation sizes feed cost models
M2 and M3.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from ..datalog.query import ConjunctiveQuery
from .database import Database
from .evaluate import evaluate
from .relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..views.view import View


def materialize_query(
    definition: ConjunctiveQuery, base: Database, name: str | None = None
) -> Relation:
    """Evaluate one view definition over *base* into a relation."""
    answer = evaluate(definition, base)
    return Relation(name or definition.name, definition.arity, answer)


def materialize_views(
    views: Iterable["View | ConjunctiveQuery"], base: Database
) -> Database:
    """Materialize every view over *base* into a fresh view database."""
    view_db = Database()
    for view in views:
        definition = getattr(view, "definition", view)
        view_db.add_relation(materialize_query(definition, base))
    return view_db
