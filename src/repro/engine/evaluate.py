"""Evaluation of conjunctive queries over in-memory databases.

The evaluator performs a pipelined multiway hash join: relational subgoals
are ordered greedily (bound-variables-first, then smallest relation) and
each is matched against its relation through a hash index on the already
bound positions.  Built-in comparison atoms (the Section 8 extension) are
applied as filters as soon as both sides are bound.

This evaluator is used for:

* computing view tuples ``T(Q, V)`` by running view definitions over
  canonical databases (Section 3.3);
* materializing views over base data (closed-world assumption);
* checking that rewritings and the original query return identical answers
  on concrete instances (the closed-world guarantee the paper relies on).
"""

from __future__ import annotations

import operator
from typing import Callable, Mapping, Sequence

from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery
from ..datalog.terms import Constant, Variable, is_variable
from .database import Database

_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "!=": operator.ne,
}

Binding = dict[Variable, object]


def evaluate(query: ConjunctiveQuery, database: Database) -> frozenset[tuple[object, ...]]:
    """The answer of *query* on *database*: a set of head tuples."""
    bindings = evaluate_bindings(query.body, database)
    answers = set()
    for binding in bindings:
        answers.add(
            tuple(
                binding[arg] if is_variable(arg) else arg.value
                for arg in query.head.args
            )
        )
    return frozenset(answers)


def evaluate_bindings(atoms: Sequence[Atom], database: Database) -> list[Binding]:
    """All satisfying assignments of the variables of *atoms*.

    Comparison atoms act as filters; every variable in a comparison must
    also occur in some relational atom (safety of built-in predicates).
    """
    relational = [atom for atom in atoms if not atom.is_comparison]
    comparisons = [atom for atom in atoms if atom.is_comparison]

    bindings: list[Binding] = [{}]
    remaining = list(relational)
    pending = list(comparisons)

    while remaining:
        bound: set[Variable] = set()
        if bindings:
            bound = set(bindings[0])
        atom = _pick_next(remaining, bound, database)
        remaining.remove(atom)
        bindings = _join_atom(bindings, atom, database)
        if not bindings:
            return []
        pending = _apply_ready_comparisons(bindings, pending)
        if not bindings:
            return []

    for comparison in pending:
        bindings = [b for b in bindings if _comparison_holds(comparison, b)]
    return bindings


def _pick_next(
    remaining: Sequence[Atom], bound: set[Variable], database: Database
) -> Atom:
    """Greedy join ordering: most bound variables, then smallest relation."""

    def score(atom: Atom) -> tuple[int, int]:
        shared = sum(1 for v in atom.variable_set() if v in bound)
        size = (
            len(database.relation(atom.predicate))
            if database.has_relation(atom.predicate)
            else 0
        )
        return (-shared, size)

    return min(remaining, key=score)


def _join_atom(
    bindings: list[Binding], atom: Atom, database: Database
) -> list[Binding]:
    """Extend each binding with all matches of *atom* in its relation."""
    if not database.has_relation(atom.predicate):
        return []
    relation = database.relation(atom.predicate)
    if relation.arity != atom.arity:
        return []

    bound_vars: set[Variable] = set(bindings[0]) if bindings else set()
    key_positions: list[int] = []
    key_getters: list[Variable] = []
    constant_checks: list[tuple[int, object]] = []
    # Positions where a variable occurs for the first time in this atom;
    # repeated occurrences become equality checks.
    new_var_positions: dict[Variable, int] = {}
    equality_checks: list[tuple[int, int]] = []

    for position, arg in enumerate(atom.args):
        if isinstance(arg, Constant):
            constant_checks.append((position, arg.value))
        elif arg in bound_vars:
            key_positions.append(position)
            key_getters.append(arg)
        elif arg in new_var_positions:
            equality_checks.append((new_var_positions[arg], position))
        else:
            new_var_positions[arg] = position

    def row_ok(row: tuple[object, ...]) -> bool:
        return all(row[p] == value for p, value in constant_checks) and all(
            row[p1] == row[p2] for p1, p2 in equality_checks
        )

    index = relation.index_on(key_positions)
    result: list[Binding] = []
    for binding in bindings:
        key = tuple(binding[v] for v in key_getters)
        for row in index.get(key, ()):
            if not row_ok(row):
                continue
            extended = dict(binding)
            for variable, position in new_var_positions.items():
                extended[variable] = row[position]
            result.append(extended)
    return result


def _apply_ready_comparisons(
    bindings: list[Binding], pending: list[Atom]
) -> list[Atom]:
    """Filter *bindings* in place with comparisons whose variables are bound."""
    if not bindings:
        return pending
    bound = set(bindings[0])
    still_pending: list[Atom] = []
    for comparison in pending:
        if comparison.variable_set() <= bound:
            bindings[:] = [b for b in bindings if _comparison_holds(comparison, b)]
        else:
            still_pending.append(comparison)
    return still_pending


def _comparison_holds(comparison: Atom, binding: Mapping[Variable, object]) -> bool:
    left, right = comparison.args
    left_value = binding[left] if is_variable(left) else left.value
    right_value = binding[right] if is_variable(right) else right.value
    return _COMPARATORS[comparison.predicate](left_value, right_value)
