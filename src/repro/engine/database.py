"""Databases: collections of named relations.

A :class:`Database` maps predicate names to :class:`Relation` objects.  It
can be built directly, from ground atoms (e.g. a canonical database), or
by materializing views over a base database
(:mod:`repro.engine.materialize`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..datalog.atoms import Atom
from ..datalog.terms import Constant
from .relation import Relation


class UnknownRelationError(KeyError):
    """Raised when a query references a relation absent from the database."""


class Database:
    """A mutable mapping from predicate names to relations."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add_relation(relation)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_facts(cls, facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms (all arguments constants).

        This is how canonical databases (Section 3.3) become executable.
        """
        db = cls()
        for fact in facts:
            values = []
            for arg in fact.args:
                if not isinstance(arg, Constant):
                    raise ValueError(f"fact {fact} is not ground")
                values.append(arg.value)
            db.add_fact(fact.predicate, values)
        return db

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[Sequence[object]]]) -> "Database":
        """Build a database from ``{name: iterable of rows}``.

        Arity is inferred from the first row; empty relations need
        :meth:`add_relation` with an explicit arity.
        """
        db = cls()
        for name, rows in data.items():
            rows = [tuple(row) for row in rows]
            if not rows:
                raise ValueError(
                    f"cannot infer arity of empty relation {name!r}; "
                    "use add_relation with an explicit arity"
                )
            relation = Relation(name, len(rows[0]), rows)
            db.add_relation(relation)
        return db

    # -- mutation ------------------------------------------------------------
    def add_relation(self, relation: Relation) -> None:
        """Register (or replace) a relation under its own name."""
        self._relations[relation.name] = relation

    def ensure_relation(self, name: str, arity: int) -> Relation:
        """Get the named relation, creating an empty one if missing."""
        relation = self._relations.get(name)
        if relation is None:
            relation = Relation(name, arity)
            self._relations[name] = relation
        return relation

    def add_fact(self, name: str, row: Sequence[object]) -> None:
        """Insert a tuple, creating the relation on first use."""
        self.ensure_relation(name, len(row)).add(row)

    # -- access ------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        """The relation registered under *name*."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def has_relation(self, name: str) -> bool:
        """Whether a relation named *name* exists."""
        return name in self._relations

    def names(self) -> tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(sorted(self._relations))

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}/{rel.arity}({len(rel)})" for name, rel in sorted(self._relations.items())
        )
        return f"Database({parts})"
