"""Deterministic fault injection for chaos-testing the planner.

The pipeline's long-running stages call :func:`fire` at **named injection
points**; outside a :func:`inject` block this is a near-free no-op (one
module-global ``None`` check), so production runs pay nothing.  Inside a
block, the active :class:`FaultPlan` counts every firing and triggers the
registered faults deterministically by call count — no randomness, so a
failing chaos test replays exactly.

Injection points
================

=================  ==========================================================
point              fired from
=================  ==========================================================
``hom_search``     :func:`repro.containment.homomorphism.find_homomorphisms`,
                   once per backtracking search started
``cache_lookup``   :meth:`repro.containment.memo.ContainmentCache._memoized`,
                   once per memoized containment/minimization operation
``enumeration``    :func:`repro.core.view_tuples.view_tuples` (per view
                   tuple) and the :mod:`repro.core.set_cover` branch
                   search (per node)
``service_retry``  :meth:`repro.service.ResilientExecutor.execute`, once
                   per planning attempt (before the backend runs)
``cache_read``     :meth:`repro.service.PlanCache.read`, once per plan
                   cache lookup (before touching disk)
``cache_write``    :meth:`repro.service.PlanCache.write`, once per plan
                   cache store (before the temp-file write)
``worker_dispatch``  :mod:`repro.parallel` worker task entry, once per
                     dispatched request (the serial fallback fires it
                     in-process)
``catalog_delta``  :meth:`repro.views.view.ViewCatalog._commit`, once per
                   add/remove/replace delta, before the copy-on-write
                   successor state is installed
``serve_admission``  :meth:`repro.serve.admission.AdmissionController.admit`,
                     once per admission decision (after the shedding
                     checks pass, before the request is enqueued)
``serve_drain``    the :mod:`repro.serve` drain protocol and
                   :meth:`repro.parallel.supervisor.SupervisedWorkerPool.
                   shutdown`, once per drain phase transition
``worker_heartbeat``  :meth:`repro.parallel.supervisor.SupervisedWorkerPool.
                      heartbeat_sweep`, parent-side, once per monitor
                      tick over the worker slots
``journal_append``  :meth:`repro.serve.journal.CatalogJournal.append`,
                    once per record, before the framed bytes hit the file
``journal_fsync``   :meth:`repro.serve.journal.CatalogJournal.append`,
                    once per commit, after the write but before fsync
``snapshot_write``  :meth:`repro.serve.snapshot.SnapshotStore.write`,
                    once per snapshot, before the temp-file write
=================  ==========================================================

The registry is data: :func:`describe_injection_points` returns
``(name, description)`` pairs, which is what ``repro faults list``
prints — so chaos tests and docs cannot silently drift from the set of
points the production code actually fires.

Fault types
===========

* :class:`StallFault` — sleeps, simulating a homomorphism search that
  stalls; used to check the deadline still bounds the planner's return.
* :class:`RaiseFault` — raises an arbitrary exception, simulating a
  cache-layer failure; ``plan()`` under a budget must degrade this to a
  ``FAILED`` outcome rather than crash the worker.
* :class:`CancelFault` — raises
  :class:`~repro.errors.BudgetExceededError` mid-enumeration, simulating
  cancellation at an arbitrary point; ``plan()`` must return the
  certified best-so-far rewritings.
* :class:`ExitFault` — SIGKILLs the current process, simulating a
  crashed parallel worker; the engine must fail only the request the
  dead worker held.

Example::

    with inject(StallFault("hom_search", seconds=0.1)) as plan_:
        result = plan(query, views, budget=ResourceBudget(deadline_seconds=0.05))
    assert plan_.observed["hom_search"] >= 1
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from ..errors import BudgetExceededError

__all__ = [
    "CancelFault",
    "ExitFault",
    "Fault",
    "FaultPlan",
    "RaiseFault",
    "StallFault",
    "describe_injection_points",
    "fault_from_spec",
    "fire",
    "inject",
    "injection_points",
]

#: Injection point -> one-line description of where it fires, in
#: firing-frequency order.  This dict is the single source of truth;
#: ``repro faults list`` renders it verbatim.
_POINT_DESCRIPTIONS: dict[str, str] = {
    "hom_search": (
        "containment homomorphism backtracking, once per search started"
    ),
    "cache_lookup": (
        "memoized containment/minimization operations in ContainmentCache"
    ),
    "enumeration": (
        "view-tuple enumeration (per tuple) and set-cover branching (per node)"
    ),
    "service_retry": (
        "resilient executor, once per planning attempt before the backend runs"
    ),
    "cache_read": "plan-cache lookup, before touching disk",
    "cache_write": "plan-cache store, before the temp-file write",
    "worker_dispatch": (
        "parallel planning engine, once per task dispatch (worker-side; "
        "the in-process serial path fires it too)"
    ),
    "catalog_delta": (
        "view-catalog mutation commit, once per add/remove/replace delta "
        "(before the copy-on-write state is installed)"
    ),
    "serve_admission": (
        "serve-daemon admission controller, once per admission decision "
        "(after shedding checks, before the request is enqueued)"
    ),
    "serve_drain": (
        "serve-daemon graceful drain, once per drain phase transition "
        "(stop-admitting, in-flight settled, pool shut down)"
    ),
    "worker_heartbeat": (
        "worker supervisor heartbeat sweep (parent-side), once per "
        "monitor tick over the worker slots"
    ),
    "journal_append": (
        "catalog write-ahead journal, once per record, before the "
        "framed bytes are written"
    ),
    "journal_fsync": (
        "catalog write-ahead journal, once per commit, after the write "
        "but before fsync makes it durable"
    ),
    "snapshot_write": (
        "catalog snapshot store, once per snapshot, before the "
        "temp-file write begins"
    ),
}

#: The canonical injection-point names, in firing-frequency order.
INJECTION_POINTS = tuple(_POINT_DESCRIPTIONS)


def injection_points() -> tuple[str, ...]:
    """The named injection points the production code fires."""
    return INJECTION_POINTS


def describe_injection_points() -> tuple[tuple[str, str], ...]:
    """``(point, description)`` pairs for every registered point."""
    return tuple(_POINT_DESCRIPTIONS.items())


@dataclass
class Fault:
    """Base class: a deterministic trigger at one injection point.

    The fault triggers on the ``after``-th firing of its point (1-based)
    and on every subsequent firing until it has triggered ``times``
    times (``None`` = forever).
    """

    point: str
    after: int = 1
    times: int | None = 1

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; "
                f"known points: {', '.join(INJECTION_POINTS)}"
            )
        if self.after < 1:
            raise ValueError("after must be >= 1 (1-based call count)")

    def trigger(self) -> None:  # pragma: no cover - overridden
        """The fault's effect; subclasses override."""

    def should_trigger(self, call_count: int, fired_count: int) -> bool:
        """Whether to trigger on the *call_count*-th firing of the point."""
        if call_count < self.after:
            return False
        return self.times is None or fired_count < self.times


@dataclass
class StallFault(Fault):
    """Simulate a stalled search: sleep for ``seconds`` when triggered."""

    seconds: float = 0.1
    sleep: Callable[[float], None] = time.sleep

    def trigger(self) -> None:
        self.sleep(self.seconds)


@dataclass
class RaiseFault(Fault):
    """Raise ``make_exception()`` when triggered (a cache-layer crash)."""

    make_exception: Callable[[], BaseException] = RuntimeError

    def trigger(self) -> None:
        raise self.make_exception()


@dataclass
class CancelFault(Fault):
    """Raise :class:`BudgetExceededError` — a mid-enumeration cancel."""

    def trigger(self) -> None:
        raise BudgetExceededError(
            f"fault injection cancelled at point {self.point!r}",
            resource="fault-injection",
        )


@dataclass
class ExitFault(Fault):
    """Hard-kill the current process — a crashed parallel worker.

    ``os.kill`` with ``SIGKILL`` bypasses every exception handler, so
    the parent's only signal is the task result that never arrives; the
    parallel engine's per-task timeout must turn that silence into a
    :class:`~repro.errors.WorkerCrashError` for that request alone.
    """

    signum: int = signal.SIGKILL

    def trigger(self) -> None:
        os.kill(os.getpid(), self.signum)


class FaultPlan:
    """The active set of faults, plus per-point firing observability.

    ``observed`` counts every :func:`fire` call per point (whether or not
    a fault triggered), so chaos tests can assert that all injection
    points were actually exercised.  ``triggered`` lists the faults that
    fired, in order.
    """

    def __init__(self, faults: tuple[Fault, ...]) -> None:
        self.faults = faults
        self.observed: dict[str, int] = {point: 0 for point in INJECTION_POINTS}
        self.triggered: list[Fault] = []
        self._fired_counts: dict[int, int] = {id(f): 0 for f in faults}

    def fire(self, point: str) -> None:
        """One firing of *point*: count it, trigger any due faults."""
        count = self.observed.get(point, 0) + 1
        self.observed[point] = count
        for fault in self.faults:
            if fault.point != point:
                continue
            fired = self._fired_counts[id(fault)]
            if fault.should_trigger(count, fired):
                self._fired_counts[id(fault)] = fired + 1
                self.triggered.append(fault)
                fault.trigger()

    def exercised_points(self) -> tuple[str, ...]:
        """The points that fired at least once, in canonical order."""
        return tuple(p for p in INJECTION_POINTS if self.observed.get(p))


def fault_from_spec(spec: str) -> Fault:
    """Parse a CLI chaos spec ``kind:point[:key=value...]`` into a fault.

    Kinds: ``kill`` (:class:`ExitFault`), ``stall`` (:class:`StallFault`,
    ``seconds=``), ``raise`` (:class:`RaiseFault`), ``cancel``
    (:class:`CancelFault`).  Common keys: ``after=N`` (1-based firing
    that triggers first), ``times=N`` or ``times=inf`` (trigger count).
    Examples::

        kill:worker_dispatch:after=10
        stall:serve_admission:seconds=0.2:times=3
        raise:cache_read:times=inf
    """
    parts = [part.strip() for part in spec.split(":")]
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise ValueError(
            f"chaos spec {spec!r} must look like kind:point[:key=value...]"
        )
    kind, point = parts[0], parts[1]
    options: dict[str, str] = {}
    for part in parts[2:]:
        if "=" not in part:
            raise ValueError(
                f"chaos spec {spec!r}: option {part!r} is not key=value"
            )
        key, _, value = part.partition("=")
        options[key.strip()] = value.strip()
    after = int(options.pop("after", "1"))
    times_raw = options.pop("times", "1")
    times = None if times_raw in ("inf", "none", "forever") else int(times_raw)
    if kind == "kill":
        fault: Fault = ExitFault(point, after=after, times=times)
    elif kind == "stall":
        seconds = float(options.pop("seconds", "0.1"))
        fault = StallFault(point, after=after, times=times, seconds=seconds)
    elif kind == "raise":
        fault = RaiseFault(point, after=after, times=times)
    elif kind == "cancel":
        fault = CancelFault(point, after=after, times=times)
    else:
        raise ValueError(
            f"chaos spec {spec!r}: unknown kind {kind!r} "
            "(expected kill/stall/raise/cancel)"
        )
    if options:
        raise ValueError(
            f"chaos spec {spec!r}: unknown options {sorted(options)}"
        )
    return fault


#: The active plan; module-global (not a contextvar) so the hot-path
#: check in :func:`fire` is a single load+is-None test.
_ACTIVE: FaultPlan | None = None


def fire(point: str) -> None:
    """Production-side hook: a near-free no-op unless faults are active."""
    if _ACTIVE is not None:
        _ACTIVE.fire(point)


@contextmanager
def inject(*faults: Fault) -> Iterator[FaultPlan]:
    """Activate *faults* for the block; yields the :class:`FaultPlan`.

    With no faults the block only *observes* firings, which is how the
    chaos suite asserts every injection point is exercised.  Nesting is
    rejected — deterministic counts require one active plan.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("fault injection is already active; no nesting")
    plan = FaultPlan(tuple(faults))
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None
