"""Testing utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
used by the chaos test suite (and available to downstream users who want
to exercise their own error handling against planner failures).
"""

from .faults import (
    CancelFault,
    Fault,
    FaultPlan,
    RaiseFault,
    StallFault,
    fire,
    inject,
    injection_points,
)

__all__ = [
    "CancelFault",
    "Fault",
    "FaultPlan",
    "RaiseFault",
    "StallFault",
    "fire",
    "inject",
    "injection_points",
]
