"""Resource budgets, cooperative cancellation, and anytime plan outcomes.

Every hot path of the pipeline — Chandra-Merlin containment,
minimization, tuple-core computation, the CoreCover set-cover search, and
the baseline backends — sits on top of NP-hard homomorphism search, so an
adversarial query/view set can make any backend run arbitrarily long.  A
:class:`ResourceBudget` bounds a planning call along four dimensions:

* ``deadline_seconds`` — wall-clock deadline for the whole call;
* ``max_hom_searches`` — homomorphism-search budget;
* ``max_view_tuples`` — cap on the enumeration of ``T(Q, V)``;
* ``max_rewritings`` — cap on rewritings recorded by the backend.

Budgets are enforced *cooperatively*: the long-running loops (the
homomorphism backtracking, view-tuple enumeration, the set-cover and
baseline combination searches) call :meth:`BudgetMeter.checkpoint` at
bounded intervals, and exhaustion raises
:class:`~repro.errors.BudgetExceededError` at the next checkpoint —
unwinding the search without leaving shared caches in a broken state.
Exhaustion is *sticky*: once a meter has tripped, every later checkpoint
raises again, so a search cannot accidentally resume.

A count limit bounds only the *counted* resource: loops that sit between
charges (set-cover branching, MiniCon partitioning) call ``checkpoint``
but charge nothing, so a count-only budget cannot interrupt them.  For a
hard wall-clock guarantee, always combine count limits with
``deadline_seconds`` — the deadline is the dimension every checkpoint
enforces.

:func:`repro.planner.plan` converts the exception into an **anytime**
:class:`PlanOutcome` (unless strict mode asks for the raise): status
``BUDGET_EXHAUSTED``, plus the best-so-far rewritings the backend had
recorded, each flagged with whether its equivalence was *certified*
before the budget ran out.  The two invariants the chaos tests assert:

1. a rewriting is marked ``certified=True`` only after its equivalence
   proof actually completed, and
2. a budgeted ``plan()`` call returns within ``deadline + ε`` (the
   checkpoints bound the time between deadline checks).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable

from ..errors import BudgetExceededError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.query import ConjunctiveQuery

__all__ = [
    "AnytimeRewriting",
    "BudgetMeter",
    "PlanOutcome",
    "PlanStatus",
    "ResourceBudget",
]


def _is_limit(value: float | int | None) -> bool:
    return value is not None and value != math.inf


@dataclass(frozen=True)
class ResourceBudget:
    """Immutable resource limits for one planning call.

    ``None`` (or ``math.inf`` for the deadline) means unlimited along
    that dimension; ``ResourceBudget()`` is the fully unlimited budget,
    under which every algorithm reproduces its unbudgeted results
    exactly (a property test asserts this).  With ``strict=True``,
    exhaustion raises :class:`~repro.errors.BudgetExceededError` out of
    :func:`repro.planner.plan` instead of degrading to an anytime
    :class:`PlanOutcome`.
    """

    deadline_seconds: float | None = None
    max_hom_searches: int | None = None
    max_view_tuples: int | None = None
    max_rewritings: int | None = None
    strict: bool = False

    def __post_init__(self) -> None:
        for name in (
            "deadline_seconds",
            "max_hom_searches",
            "max_view_tuples",
            "max_rewritings",
        ):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be nonnegative, got {value!r}")

    @property
    def is_unlimited(self) -> bool:
        """Whether no dimension is actually bounded."""
        return not (
            _is_limit(self.deadline_seconds)
            or _is_limit(self.max_hom_searches)
            or _is_limit(self.max_view_tuples)
            or _is_limit(self.max_rewritings)
        )

    def with_deadline(self, seconds: float | None) -> "ResourceBudget":
        """This budget with ``deadline_seconds`` replaced by *seconds*.

        The resilient executor uses this to hand each retry attempt the
        *remaining* share of the request deadline while keeping the
        count limits intact.  Negative remainders clamp to zero (an
        already-expired deadline, not an error).
        """
        if seconds is not None and seconds < 0:
            seconds = 0.0
        return ResourceBudget(
            deadline_seconds=seconds,
            max_hom_searches=self.max_hom_searches,
            max_view_tuples=self.max_view_tuples,
            max_rewritings=self.max_rewritings,
            strict=self.strict,
        )

    def start(
        self, clock: Callable[[], float] = time.monotonic
    ) -> "BudgetMeter":
        """A live meter for this budget, with the deadline anchored now."""
        return BudgetMeter(self, clock=clock)


class BudgetMeter:
    """Live consumption state of one :class:`ResourceBudget`.

    The ``clock`` is injectable so the unit tests can drive deadlines
    deterministically; production code uses ``time.monotonic``.
    """

    __slots__ = (
        "budget",
        "exhausted_resource",
        "hom_searches",
        "rewritings",
        "started_at",
        "view_tuples",
        "_clock",
        "_deadline_at",
    )

    def __init__(
        self,
        budget: ResourceBudget,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget = budget
        self._clock = clock
        self.started_at = clock()
        deadline = budget.deadline_seconds
        self._deadline_at = (
            self.started_at + deadline if _is_limit(deadline) else None
        )
        self.hom_searches = 0
        self.view_tuples = 0
        self.rewritings = 0
        #: Name of the first-exhausted resource; ``None`` while healthy.
        self.exhausted_resource: str | None = None

    # -- introspection ------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since the meter was started."""
        return self._clock() - self.started_at

    def remaining_seconds(self) -> float:
        """Seconds until the deadline (``inf`` without one)."""
        if self._deadline_at is None:
            return math.inf
        return self._deadline_at - self._clock()

    @property
    def exhausted(self) -> bool:
        """Whether some resource has run out."""
        return self.exhausted_resource is not None

    # -- cooperative cancellation -------------------------------------------
    def checkpoint(self) -> None:
        """Raise :class:`BudgetExceededError` if the budget has run out.

        Called from the long-running loops; cheap when no deadline is
        set.  Exhaustion is sticky: once tripped, every checkpoint
        raises.
        """
        if self.exhausted_resource is not None:
            self._exhaust(self.exhausted_resource)
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            self._exhaust("deadline")

    def charge_hom_search(self) -> None:
        """Account one homomorphism search, then checkpoint."""
        self.hom_searches += 1
        limit = self.budget.max_hom_searches
        if limit is not None and self.hom_searches > limit:
            self._exhaust("hom_searches")
        self.checkpoint()

    def charge_view_tuple(self) -> None:
        """Account one enumerated view tuple, then checkpoint."""
        self.view_tuples += 1
        limit = self.budget.max_view_tuples
        if limit is not None and self.view_tuples > limit:
            self._exhaust("view_tuples")
        self.checkpoint()

    def charge_rewriting(self) -> None:
        """Account one recorded rewriting, then checkpoint."""
        self.rewritings += 1
        limit = self.budget.max_rewritings
        if limit is not None and self.rewritings > limit:
            self._exhaust("rewritings")
        self.checkpoint()

    def _exhaust(self, resource: str) -> None:
        self.exhausted_resource = resource
        raise BudgetExceededError(
            f"resource budget exhausted: {resource} "
            f"(after {self.elapsed():.3f}s, {self.hom_searches} hom "
            f"searches, {self.view_tuples} view tuples, "
            f"{self.rewritings} rewritings)",
            resource=resource,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.exhausted_resource or "ok"
        return (
            f"BudgetMeter({state}, elapsed={self.elapsed():.3f}s, "
            f"hom={self.hom_searches}, tuples={self.view_tuples}, "
            f"rewritings={self.rewritings})"
        )


class PlanStatus(Enum):
    """How a :func:`repro.planner.plan` call ended."""

    #: The backend ran to completion; results are exact.
    COMPLETE = "complete"
    #: A resource budget ran out; results are the best found so far.
    BUDGET_EXHAUSTED = "budget_exhausted"
    #: The backend raised unexpectedly under a budget (e.g. an injected
    #: fault); results are the best found before the failure.
    FAILED = "failed"
    #: Preflight static analysis (``plan(..., preflight=True)``) found
    #: error-severity diagnostics; the backend never ran.
    REJECTED = "rejected"


@dataclass(frozen=True)
class AnytimeRewriting:
    """One rewriting plus whether its equivalence proof completed.

    ``certified=True`` means the closed-world equivalence of the
    rewriting's expansion with the query was fully verified before the
    budget ran out (for CoreCover covers, Theorem 4.1/5.1 supplies the
    proof once the cover enumeration's inputs are complete).
    ``certified=False`` marks a candidate that is only known to be
    *contained* in the query (Bucket/MiniCon candidates whose
    equivalence check had not yet succeeded).
    """

    query: "ConjunctiveQuery"
    certified: bool

    def __str__(self) -> str:
        tag = "certified" if self.certified else "uncertified"
        return f"[{tag}] {self.query}"


@dataclass(frozen=True)
class PlanOutcome:
    """The anytime result envelope of one ``plan()`` call."""

    status: PlanStatus
    #: Every rewriting the backend recorded, best-so-far on exhaustion.
    rewritings: tuple[AnytimeRewriting, ...]
    #: Which resource ran out (``BUDGET_EXHAUSTED`` only).
    exhausted_resource: str | None = None
    #: The unexpected exception (``FAILED`` only).
    error: BaseException | None = None
    #: Wall-clock duration of the call.
    elapsed_seconds: float = 0.0
    #: Preflight lint findings (``plan(..., preflight=True)`` only); all
    #: findings on success, the full report's findings on ``REJECTED``.
    diagnostics: tuple = ()

    @property
    def ok(self) -> bool:
        """Whether the backend ran to completion."""
        return self.status is PlanStatus.COMPLETE

    @property
    def certified_rewritings(self) -> tuple["ConjunctiveQuery", ...]:
        """The rewritings whose equivalence proof completed."""
        return tuple(r.query for r in self.rewritings if r.certified)

    @property
    def uncertified_rewritings(self) -> tuple["ConjunctiveQuery", ...]:
        """Contained-only candidates awaiting an equivalence proof."""
        return tuple(r.query for r in self.rewritings if not r.certified)

    def __str__(self) -> str:
        parts = [self.status.value]
        if self.exhausted_resource:
            parts.append(f"resource={self.exhausted_resource}")
        if self.error is not None:
            parts.append(f"error={type(self.error).__name__}")
        certified = sum(1 for r in self.rewritings if r.certified)
        parts.append(
            f"{certified}/{len(self.rewritings)} certified rewritings"
        )
        parts.append(f"{self.elapsed_seconds:.3f}s")
        return f"PlanOutcome({', '.join(parts)})"
