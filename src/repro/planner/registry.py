"""The rewriter-backend registry and the unified ``plan()`` entry point.

Every rewriting algorithm in the package — CoreCover and CoreCover*
(Sections 4/5), the naive Theorem 3.1 search, and the Bucket, MiniCon and
inverse-rules baselines — is registered as a :class:`RewriterBackend` and
runs through one call path::

    from repro.planner import plan

    result = plan(query, views, backend="corecover")
    result.rewritings          # the equivalent rewritings found
    result.details             # backend-specific result object
    result.stats               # PlannerStats: cache hits, hom searches, stages

    chosen = plan(query, views, backend="corecover-star",
                  cost_model="m2", database=view_db).chosen

Cost models are resolved by name from :mod:`repro.cost.registry`.  The
legacy entry points (``core_cover``, ``bucket_algorithm``, ``minicon``,
``naive_gmr_search``) are thin shims over this function, so both spellings
stay in lockstep.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Sequence

from ..datalog.query import ConjunctiveQuery
from ..errors import BudgetExceededError, ReproError
from ..views.view import View, ViewCatalog
from .context import PlannerContext, PlannerStats
from .limits import AnytimeRewriting, PlanOutcome, PlanStatus, ResourceBudget

__all__ = [
    "PlanResult",
    "RewriterBackend",
    "UnknownBackendError",
    "available_backends",
    "get_backend",
    "plan",
    "register_backend",
]


class UnknownBackendError(ReproError, LookupError):
    """Raised when a backend name does not resolve."""


@dataclass(frozen=True)
class RewriterBackend:
    """A named rewriting algorithm.

    ``run`` receives ``(query, catalog, context=..., **options)`` and
    returns ``(rewritings, details)``: the tuple of equivalent rewritings
    and the algorithm's native result object (e.g. ``CoreCoverResult``,
    ``MiniConResult``).
    """

    name: str
    description: str
    run: Callable[..., tuple[tuple[ConjunctiveQuery, ...], object]]
    #: False for backends (inverse rules) that emit a maximally-contained
    #: program instead of equivalent rewritings.
    produces_rewritings: bool = True


@dataclass(frozen=True)
class PlanResult:
    """Everything one ``plan()`` call produced."""

    backend: str
    query: ConjunctiveQuery
    views: ViewCatalog
    rewritings: tuple[ConjunctiveQuery, ...]
    #: The backend's native result (CoreCoverResult, BucketResult, ...).
    details: object
    context: PlannerContext
    #: Instrumentation for this call only (deltas when the context is shared).
    stats: PlannerStats
    cost_model: str | None = None
    #: The cost model's winning plan, when a cost model was requested.
    chosen: object | None = None
    #: Anytime envelope: status, best-so-far rewritings, certification.
    outcome: PlanOutcome | None = None
    #: The preflight :class:`~repro.analysis.AnalysisReport`
    #: (``preflight=True`` only).
    analysis: object | None = None

    @property
    def has_rewriting(self) -> bool:
        """Whether any equivalent rewriting was found."""
        return bool(self.rewritings)

    @property
    def diagnostics(self) -> tuple:
        """The preflight diagnostics (empty without ``preflight=True``)."""
        return self.outcome.diagnostics if self.outcome is not None else ()

    def phase_profile(self, *, parse_seconds: float = 0.0):
        """This call's stage timings folded into the canonical phases.

        Returns a :class:`~repro.profiling.phases.PhaseProfile`;
        *parse_seconds* supplies the pre-planning parse phase.
        """
        from ..profiling.phases import profile_from_stages

        return profile_from_stages(
            self.stats.stages, parse_seconds=parse_seconds
        )


_BACKENDS: dict[str, RewriterBackend] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register_backend(
    backend: RewriterBackend, *, replace: bool = False
) -> RewriterBackend:
    """Register *backend* under its (normalized) name."""
    key = _normalize(backend.name)
    if not replace and key in _BACKENDS:
        raise ValueError(f"backend {key!r} is already registered")
    _BACKENDS[key] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> RewriterBackend:
    """Resolve a backend by name.

    Raises :class:`UnknownBackendError` listing the registered backends
    when the lookup fails.
    """
    key = _normalize(name)
    backend = _BACKENDS.get(key)
    if backend is None:
        registered = ", ".join(available_backends()) or "(none)"
        raise UnknownBackendError(
            f"unknown backend {name!r}; registered backends: {registered}"
        )
    return backend


def plan(
    query: ConjunctiveQuery,
    views: ViewCatalog | Sequence[View],
    *,
    backend: str = "corecover",
    cost_model: str | None = None,
    context: PlannerContext | None = None,
    database=None,
    statistics=None,
    cost_options: dict | None = None,
    budget: ResourceBudget | None = None,
    strict_budget: bool = False,
    preflight: bool = False,
    acyclic_fast_path: bool = True,
    **options,
) -> PlanResult:
    """Rewrite *query* using *views* with one backend, optionally costed.

    ``options`` are forwarded to the backend (e.g. ``max_rewritings`` for
    ``corecover-star``, ``require_equivalent`` for ``minicon``).
    ``cost_options`` are forwarded to the cost model's selector (e.g.
    ``annotator`` for ``m3``).  Passing a shared ``context`` reuses its
    caches; ``result.stats`` always reports this call's deltas.

    With ``preflight=True`` the :mod:`repro.analysis` lint engine runs
    first on the same context (sharing its memoized containment work with
    the backend).  Error-severity diagnostics short-circuit the call: the
    returned outcome has status ``REJECTED``, carries the diagnostics,
    and the backend never runs.  On a clean preflight the diagnostics
    (warnings/infos) ride along on ``result.outcome.diagnostics`` and the
    full report on ``result.analysis``.

    With a ``budget`` (or a budgeted context), the call is **anytime**:
    budget exhaustion does not raise — ``result.outcome`` carries status
    ``BUDGET_EXHAUSTED`` plus the best-so-far rewritings, each flagged
    with whether its equivalence proof completed (*certified*).  Pass
    ``strict_budget=True`` (or ``budget.strict``) to get the
    :class:`~repro.errors.BudgetExceededError` raise instead.  Input
    errors (:class:`~repro.errors.ReproError` subclasses such as parse or
    arity failures) always propagate; they are not degradation.

    ``acyclic_fast_path`` (default on) routes the backend's homomorphism
    searches through the join-tree-guided engine when the query's body
    hypergraph is alpha-acyclic and comparison-free — same rewritings,
    bit for bit, with far fewer search nodes (see
    :mod:`repro.containment.join_guided`).  Cyclic queries, and any
    individual search the router deems ineligible, transparently use the
    general backtracker.  ``--no-acyclic-fast-path`` is the CLI spelling
    of ``acyclic_fast_path=False``.
    """
    catalog = views if isinstance(views, ViewCatalog) else ViewCatalog(views)
    ctx = context if context is not None else PlannerContext()
    before = ctx.snapshot()
    resolved = get_backend(backend)

    report = None
    if preflight:
        # Imported lazily: repro.analysis itself imports this registry.
        from ..analysis import PlannerConfig, analyze

        preflight_started = time.perf_counter()
        with ctx.stage("preflight"):
            report = analyze(
                query,
                catalog,
                config=PlannerConfig(
                    backend=resolved.name,
                    cost_model=cost_model,
                    has_database=database is not None,
                    has_statistics=statistics is not None,
                ),
                context=ctx,
            )
        if not report.ok:
            outcome = PlanOutcome(
                status=PlanStatus.REJECTED,
                rewritings=(),
                elapsed_seconds=time.perf_counter() - preflight_started,
                diagnostics=report.diagnostics,
            )
            return PlanResult(
                backend=resolved.name,
                query=query,
                views=catalog,
                rewritings=(),
                details=None,
                context=ctx,
                stats=ctx.snapshot().since(before),
                outcome=outcome,
                analysis=report,
            )

    # Routing: the fast path engages only when the query's hypergraph is
    # alpha-acyclic (a join tree exists) and comparison-free — comparison
    # atoms fall outside the hypergraph, so their searches cannot be
    # guided and the flag would misreport.  The decision is cheap (ear
    # elimination is memoized per interned query) and timed as its own
    # stage, folded into the ``preflight`` phase.
    with ctx.stage("routing"):
        route_acyclic = (
            acyclic_fast_path
            and not any(atom.is_comparison for atom in query.body)
            and ctx.join_tree(query) is not None
        )

    active_budget = budget
    if active_budget is None and ctx.meter is not None:
        active_budget = ctx.meter.budget
    strict = strict_budget or (
        active_budget is not None and active_budget.strict
    )

    started = time.perf_counter()
    status = PlanStatus.COMPLETE
    exhausted_resource: str | None = None
    error: BaseException | None = None
    rewritings: tuple[ConjunctiveQuery, ...] = ()
    details: object = None
    route = ctx.routed_acyclic() if route_acyclic else nullcontext()
    with ctx.collecting() as partials:
        with ctx.budgeted(budget) as meter:
            try:
                with route, ctx.stage(f"rewrite:{resolved.name}"):
                    rewritings, details = resolved.run(
                        query, catalog, context=ctx, **options
                    )
            except BudgetExceededError as exc:
                if strict:
                    raise
                status = PlanStatus.BUDGET_EXHAUSTED
                exhausted_resource = exc.resource or (
                    meter.exhausted_resource if meter is not None else None
                )
            except ReproError:
                raise  # input errors are never degradation
            except Exception as exc:
                if active_budget is None or strict:
                    raise
                # Degraded mode: an unexpected failure (e.g. an injected
                # fault) under a budget still yields the best-so-far.
                status = PlanStatus.FAILED
                error = exc
    elapsed = time.perf_counter() - started

    if status is PlanStatus.COMPLETE:
        anytime = tuple(
            AnytimeRewriting(rewriting, certified=True)
            for rewriting in rewritings
        )
    else:
        anytime = tuple(partials)
        rewritings = tuple(r.query for r in anytime if r.certified)
    outcome = PlanOutcome(
        status=status,
        rewritings=anytime,
        exhausted_resource=exhausted_resource,
        error=error,
        elapsed_seconds=elapsed,
        diagnostics=report.diagnostics if report is not None else (),
    )

    chosen = None
    model_name: str | None = None
    if cost_model is not None and status is PlanStatus.COMPLETE:
        from ..cost.registry import get_cost_model

        model = get_cost_model(cost_model)
        model_name = model.name
        with ctx.stage(f"cost:{model.name}"):
            chosen = model.select(
                rewritings,
                query=query,
                views=catalog,
                database=database,
                statistics=statistics,
                **(cost_options or {}),
            )

    return PlanResult(
        backend=resolved.name,
        query=query,
        views=catalog,
        rewritings=tuple(rewritings),
        details=details,
        context=ctx,
        stats=ctx.snapshot().since(before),
        cost_model=model_name,
        chosen=chosen,
        outcome=outcome,
        analysis=report,
    )


# Register the built-in backends on first import of the registry.
from . import backends as _backends  # noqa: E402,F401  (registration side effect)
