"""The built-in rewriter backends.

Importing this module (which :mod:`repro.planner.registry` does on its
own import) registers every rewriting algorithm of the package:

========== ==============================================================
name        algorithm
========== ==============================================================
corecover        CoreCover (Figure 4) — all GMRs, M1-optimal search space
corecover-star   CoreCover* (Section 5.1) — all minimal view-tuple rewritings
naive            brute-force Theorem 3.1 combination search
bucket           Bucket algorithm (Levy et al.)
minicon          MiniCon (Pottinger & Levy)
inverse-rules    inverse rules (Duschka & Genesereth) — maximally
                 contained program, no equivalent rewritings
========== ==============================================================

Each ``run`` callable takes ``(query, catalog, context=..., **options)``
and returns ``(rewritings, details)``.  Imports of the algorithm modules
happen lazily inside the run functions: those modules' legacy shims
import the registry in turn, and deferring breaks the cycle.
"""

from __future__ import annotations

from ..datalog.query import ConjunctiveQuery
from ..views.view import ViewCatalog
from .context import PlannerContext
from .registry import RewriterBackend, register_backend

__all__ = ["register_builtin_backends"]


def _run_corecover(
    query: ConjunctiveQuery,
    catalog: ViewCatalog,
    *,
    context: PlannerContext,
    **options,
):
    from ..core.corecover import core_cover_impl

    result = core_cover_impl(query, catalog, context=context, **options)
    return result.rewritings, result


def _run_corecover_star(
    query: ConjunctiveQuery,
    catalog: ViewCatalog,
    *,
    context: PlannerContext,
    **options,
):
    from ..core.corecover import core_cover_impl

    result = core_cover_impl(
        query, catalog, all_minimal=True, context=context, **options
    )
    return result.rewritings, result


def _run_naive(
    query: ConjunctiveQuery,
    catalog: ViewCatalog,
    *,
    context: PlannerContext,
    **options,
):
    from ..core.naive import run_naive_gmr_search

    found = run_naive_gmr_search(query, catalog, context=context, **options)
    return tuple(found), found


def _run_bucket(
    query: ConjunctiveQuery,
    catalog: ViewCatalog,
    *,
    context: PlannerContext,
    **options,
):
    from ..baselines.bucket import run_bucket_algorithm

    result = run_bucket_algorithm(query, catalog, context=context, **options)
    return result.equivalent_rewritings, result


def _run_minicon(
    query: ConjunctiveQuery,
    catalog: ViewCatalog,
    *,
    context: PlannerContext,
    **options,
):
    from ..baselines.minicon import run_minicon

    result = run_minicon(query, catalog, context=context, **options)
    return result.equivalent_rewritings, result


def _run_inverse_rules(
    query: ConjunctiveQuery,
    catalog: ViewCatalog,
    *,
    context: PlannerContext,
    **options,
):
    from ..baselines.inverse_rules import invert_views

    rules = tuple(invert_views(catalog, context=context))
    return (), rules


def register_builtin_backends() -> None:
    """Register (idempotently) every built-in backend."""
    builtins = [
        RewriterBackend(
            name="corecover",
            description=(
                "CoreCover (Figure 4): all globally-minimal rewritings, "
                "optimal under cost model M1"
            ),
            run=_run_corecover,
        ),
        RewriterBackend(
            name="corecover-star",
            description=(
                "CoreCover* (Section 5.1): all minimal rewritings using "
                "view tuples — the M2/M3 search space"
            ),
            run=_run_corecover_star,
        ),
        RewriterBackend(
            name="naive",
            description=(
                "brute-force Theorem 3.1 search over view-tuple "
                "combinations (correctness baseline)"
            ),
            run=_run_naive,
        ),
        RewriterBackend(
            name="bucket",
            description="Bucket algorithm (Levy et al. 1996)",
            run=_run_bucket,
        ),
        RewriterBackend(
            name="minicon",
            description="MiniCon (Pottinger & Levy, VLDB 2000)",
            run=_run_minicon,
        ),
        RewriterBackend(
            name="inverse-rules",
            description=(
                "inverse rules (Duschka & Genesereth): maximally-contained "
                "datalog program; details hold the inverted rules"
            ),
            run=_run_inverse_rules,
            produces_rewritings=False,
        ),
    ]
    for backend in builtins:
        register_backend(backend, replace=True)


register_builtin_backends()
