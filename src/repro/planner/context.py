"""The shared planning substrate threaded through every rewriting stage.

A :class:`PlannerContext` bundles

* one :class:`~repro.datalog.interning.InternTable` (cheap structural
  keys for atoms and queries),
* one :class:`~repro.containment.memo.ContainmentCache` (memoized
  minimization, canonical databases, containment, plus the
  homomorphism-search counter),
* planner-level caches: tuple-cores keyed by
  ``(query, view definition, view-tuple atom)`` and view-tuple rows keyed
  by ``(query, view definition)`` — the two places the CoreCover stages
  re-derive identical results when a catalog contains structurally
  duplicate views (Section 5.2's motivation), and
* instrumentation: per-cache hit/miss counters, per-stage wall times, and
  search counts, snapshotted into an immutable :class:`PlannerStats`.

Every algorithm accepts an optional ``context``; passing one shares the
caches across calls (e.g. across the 40 queries of a Figure 6 sweep
point), omitting it gives each call a private context.  Construct with
``caching=False`` to keep the counters but disable all memoization — the
property tests use this to check cached and uncached runs agree.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..containment.memo import CacheCounter, ContainmentCache
from ..datalog.atoms import Atom
from ..datalog.interning import InternTable
from ..datalog.query import ConjunctiveQuery
from ..datalog.substitution import Substitution
from ..datalog.terms import Term
from .limits import AnytimeRewriting, BudgetMeter, ResourceBudget

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..containment.canonical import CanonicalDatabase
    from ..containment.join_guided import AcyclicRouter
    from ..core.tuple_core import TupleCore
    from ..core.view_tuples import ViewTuple
    from ..datalog.hypergraph import JoinTree
    from ..views.view import View

__all__ = ["PlannerContext", "PlannerStats"]

#: Head predicate used when interning view definitions name-independently.
_VIEWDEF_MARKER = "__viewdef__"


@dataclass(frozen=True)
class PlannerStats:
    """An immutable snapshot of a context's instrumentation.

    ``since`` subtracts an earlier snapshot, yielding per-run numbers even
    when one context is shared across many runs.
    """

    caching_enabled: bool
    hom_searches: int
    core_searches: int
    cache_hits: int
    cache_misses: int
    #: ``(cache name, hits, misses)`` per cache, sorted by name.
    caches: tuple[tuple[str, int, int], ...]
    #: ``(stage name, seconds)`` per stage, in first-seen order.
    stages: tuple[tuple[str, float], ...]
    #: Work units expanded by homomorphism searches (see
    #: :meth:`ContainmentCache.record_nodes`).
    hom_nodes: int = 0
    #: Searches routed through the acyclic join-tree-guided engine.
    fast_path_searches: int = 0

    @property
    def cache_lookups(self) -> int:
        """Total cache lookups."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.cache_lookups
        return self.cache_hits / total if total else 0.0

    def since(self, earlier: "PlannerStats") -> "PlannerStats":
        """This snapshot minus *earlier* (counters and stage times)."""
        earlier_caches = {name: (h, m) for name, h, m in earlier.caches}
        caches = tuple(
            (name, hits - earlier_caches.get(name, (0, 0))[0],
             misses - earlier_caches.get(name, (0, 0))[1])
            for name, hits, misses in self.caches
        )
        earlier_stages = dict(earlier.stages)
        stages = tuple(
            (name, seconds - earlier_stages.get(name, 0.0))
            for name, seconds in self.stages
        )
        return PlannerStats(
            caching_enabled=self.caching_enabled,
            hom_searches=self.hom_searches - earlier.hom_searches,
            core_searches=self.core_searches - earlier.core_searches,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            caches=caches,
            stages=stages,
            hom_nodes=self.hom_nodes - earlier.hom_nodes,
            fast_path_searches=(
                self.fast_path_searches - earlier.fast_path_searches
            ),
        )


class PlannerContext:
    """Interning + memoization + instrumentation for one planning session."""

    def __init__(
        self,
        *,
        caching: bool = True,
        interner: InternTable | None = None,
        budget: ResourceBudget | None = None,
    ) -> None:
        self.interner = interner if interner is not None else InternTable()
        self.caching = caching
        self.containment = ContainmentCache(self.interner, caching=caching)
        #: Number of tuple-core backtracking searches actually performed.
        self.core_searches = 0
        #: Accumulated wall time per pipeline stage.
        self.stage_seconds: dict[str, float] = {}
        self.counters: dict[str, CacheCounter] = self.containment.counters
        self.counters["tuple_core"] = CacheCounter()
        self.counters["view_rows"] = CacheCounter()
        self.counters["join_tree"] = CacheCounter()
        self._tuple_cores: dict[tuple, tuple[frozenset[int], Substitution]] = {}
        self._view_rows: dict[tuple, tuple[tuple[Term, ...], ...]] = {}
        self._view_def_keys: dict[int, tuple] = {}
        self._keepalive: list[object] = []
        #: Live budget meter; ``None`` means unbudgeted.  A budget given
        #: here anchors its deadline at construction; ``plan(budget=...)``
        #: instead installs a per-call meter via :meth:`budgeted`.
        self.meter: BudgetMeter | None = (
            budget.start() if budget is not None else None
        )
        self.containment.meter = self.meter
        #: Anytime-rewriting collector; active only inside a ``plan()``
        #: call (see :meth:`collecting`).
        self._partials: list[AnytimeRewriting] | None = None
        #: Whether the acyclic fast path is active (set by ``plan()``'s
        #: routing via :meth:`routed_acyclic`); stages read it to report
        #: the routing decision in their stats.
        self.acyclic_route: bool = False
        self._join_trees: dict[tuple, "JoinTree | None"] = {}
        self._acyclic_router: "AcyclicRouter | None" = None

    # -- resource budgets -------------------------------------------------------
    def checkpoint(self) -> None:
        """Cooperative cancellation point: raise if the budget ran out."""
        meter = self.meter
        if meter is not None:
            meter.checkpoint()

    def charge_view_tuple(self) -> None:
        """Charge one enumerated view tuple against the budget."""
        meter = self.meter
        if meter is not None:
            meter.charge_view_tuple()

    @contextmanager
    def budgeted(self, budget: ResourceBudget | None) -> Iterator[BudgetMeter | None]:
        """Install a fresh meter for *budget* for the duration of the block.

        With ``budget=None`` the context's own meter (if any) stays in
        charge.  The deadline is anchored when the block is entered, so a
        shared context can serve many deadline-bounded calls.
        """
        if budget is None:
            yield self.meter
            return
        meter = budget.start()
        previous = self.meter
        self.meter = meter
        self.containment.meter = meter
        try:
            yield meter
        finally:
            self.meter = previous
            self.containment.meter = previous

    @contextmanager
    def collecting(self) -> Iterator[list[AnytimeRewriting]]:
        """Collect anytime rewritings recorded during the block."""
        previous = self._partials
        collected: list[AnytimeRewriting] = []
        self._partials = collected
        try:
            yield collected
        finally:
            self._partials = previous

    def record_rewriting(
        self, rewriting: ConjunctiveQuery, *, certified: bool
    ) -> None:
        """Record a best-so-far rewriting the moment a backend finds it.

        ``certified`` must be ``True`` only once the rewriting's
        equivalence proof has fully completed — the anytime invariant the
        chaos tests assert.  Recording charges ``max_rewritings``; the
        raise happens *before* the over-budget rewriting is appended, so
        the collected list never exceeds the cap.
        """
        meter = self.meter
        if meter is not None:
            meter.charge_rewriting()
        if self._partials is not None:
            self._partials.append(AnytimeRewriting(rewriting, certified))

    # -- delegated containment operations -------------------------------------
    def minimize(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        """Memoized query minimization."""
        return self.containment.minimize(query)

    def canonical_database(self, query: ConjunctiveQuery) -> "CanonicalDatabase":
        """Memoized canonical (frozen) database."""
        return self.containment.canonical_database(query)

    def is_contained_in(
        self, inner: ConjunctiveQuery, outer: ConjunctiveQuery
    ) -> bool:
        """Memoized Chandra-Merlin containment test."""
        return self.containment.is_contained_in(inner, outer)

    def is_equivalent_to(
        self, left: ConjunctiveQuery, right: ConjunctiveQuery
    ) -> bool:
        """Memoized equivalence (two cached containment tests)."""
        return self.containment.is_equivalent_to(left, right)

    def mapping_exists(
        self, outer: ConjunctiveQuery, inner: ConjunctiveQuery
    ) -> bool:
        """Memoized containment-mapping existence (no comparison check)."""
        return self.containment.mapping_exists(outer, inner)

    def observing(self):
        """Attribute homomorphism searches in the block to this context."""
        return self.containment.observing()

    @property
    def hom_searches(self) -> int:
        """Homomorphism searches performed under this context."""
        return self.containment.hom_searches

    @property
    def hom_nodes(self) -> int:
        """Search work units expanded under this context."""
        return self.containment.hom_nodes

    @property
    def fast_path_searches(self) -> int:
        """Searches routed through the acyclic fast path."""
        return self.containment.fast_path_searches

    # -- acyclic routing --------------------------------------------------------
    def join_tree(self, query: ConjunctiveQuery) -> "JoinTree | None":
        """Memoized ear-elimination join tree (``None`` when cyclic).

        Keyed on the interned query, like every other planner cache, so
        a shared context pays for ear elimination once per structure.
        """
        from ..datalog.hypergraph import join_tree as compute

        counter = self.counters["join_tree"]
        if not self.caching:
            counter.misses += 1
            return compute(query)
        key = self.interner.query_key(query)
        try:
            tree = self._join_trees[key]
        except KeyError:
            counter.misses += 1
            tree = compute(query)
            self._join_trees[key] = tree
        else:
            counter.hits += 1
        return tree

    def acyclic_router(self) -> "AcyclicRouter":
        """This context's (lazily built) acyclic-search router."""
        from ..containment.join_guided import AcyclicRouter

        if self._acyclic_router is None:
            self._acyclic_router = AcyclicRouter()
        return self._acyclic_router

    @contextmanager
    def routed_acyclic(self) -> Iterator[None]:
        """Run the block with the acyclic fast path active.

        Installs this context's router as the homomorphism engine's
        guide and flags the context so pipeline stages can report the
        routing decision.  Restores both on exit (nesting-safe).
        """
        from ..containment.homomorphism import acyclic_scope

        previous = self.acyclic_route
        self.acyclic_route = True
        try:
            with acyclic_scope(self.acyclic_router()):
                yield
        finally:
            self.acyclic_route = previous

    # -- view-definition interning ---------------------------------------------
    def view_definition_key(self, view: "View") -> tuple:
        """A name-independent structural key for a view's definition.

        Views are compared by head arguments plus body, so equivalent
        catalog entries with different names (V1 and V5 of the
        car-loc-part example) share cached tuple-cores and view rows.
        """
        cached = self._view_def_keys.get(id(view))
        if cached is not None:
            return cached
        definition = view.definition
        key = (
            self.interner.atom_key(Atom(_VIEWDEF_MARKER, definition.head.args)),
            self.interner.atoms_key(definition.body),
        )
        self._view_def_keys[id(view)] = key
        self._keepalive.append(view)
        return key

    def retire_views(self, views: "Iterable[View]") -> int:
        """Evict memoized work for view definitions leaving the catalog.

        Called on a catalog delta for the *removed* views.  Every planner
        cache is keyed on structural content, so entries can never go
        stale — retiring is memory hygiene only, releasing tuple-cores,
        view rows, and containment results that the shrunk catalog can no
        longer ask for.  A definition still present under another view
        name is simply recomputed on its next use.  Returns the number of
        entries dropped.
        """
        def_keys = {self.view_definition_key(view) for view in views}
        if not def_keys:
            return 0
        dropped = 0
        for cache in (self._tuple_cores, self._view_rows):
            for key in [k for k in cache if k[1] in def_keys]:
                del cache[key]
                dropped += 1
        query_keys = {
            self.interner.query_key(view.definition) for view in views
        }
        dropped += self.containment.evict_query_keys(query_keys)
        for key in [k for k in self._join_trees if k in query_keys]:
            del self._join_trees[key]
            dropped += 1
        for view in views:
            self._view_def_keys.pop(id(view), None)
        return dropped

    # -- tuple-core cache -------------------------------------------------------
    def tuple_core(
        self, query: ConjunctiveQuery, view_tuple: "ViewTuple"
    ) -> "TupleCore":
        """Memoized tuple-core computation (Definition 4.1).

        The core depends only on the query, the view's definition, and the
        view tuple's atom arguments — never on the view's *name* — so the
        cache key drops the name and structurally duplicate views hit.
        """
        from ..core.tuple_core import TupleCore, tuple_core as compute

        checkpoint = self.meter.checkpoint if self.meter is not None else None
        counter = self.counters["tuple_core"]
        if not self.caching:
            counter.misses += 1
            self.core_searches += 1
            return compute(query, view_tuple, checkpoint=checkpoint)
        key = (
            self.interner.query_key(query),
            self.view_definition_key(view_tuple.view),
            self.interner.atom_key(
                Atom(_VIEWDEF_MARKER, view_tuple.atom.args)
            ),
        )
        cached = self._tuple_cores.get(key)
        if cached is not None:
            counter.hits += 1
            covered, mapping = cached
            return TupleCore(view_tuple, covered, mapping)
        counter.misses += 1
        self.core_searches += 1
        core = compute(query, view_tuple, checkpoint=checkpoint)
        self._tuple_cores[key] = (core.covered, core.mapping)
        return core

    # -- view-evaluation cache ---------------------------------------------------
    def view_tuple_args(
        self,
        query: ConjunctiveQuery,
        view: "View",
        compute: Callable[[], tuple[tuple[Term, ...], ...]],
    ) -> tuple[tuple[Term, ...], ...]:
        """Memoized thawed answer rows of *view* over *query*'s canonical DB.

        ``compute`` must return the sorted tuple of argument tuples; the
        cache key is (query, view definition), so equally-defined views
        evaluated against the same canonical database share one
        evaluation.
        """
        counter = self.counters["view_rows"]
        if not self.caching:
            counter.misses += 1
            return compute()
        key = (
            self.interner.query_key(query),
            self.view_definition_key(view),
        )
        cached = self._view_rows.get(key)
        if cached is not None:
            counter.hits += 1
            return cached
        counter.misses += 1
        rows = compute()
        self._view_rows[key] = rows
        return rows

    # -- stage timing --------------------------------------------------------------
    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Accumulate wall time of the block under *name*."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + elapsed
            )

    # -- aggregate counters -----------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Hits summed over every cache."""
        return sum(counter.hits for counter in self.counters.values())

    @property
    def cache_misses(self) -> int:
        """Misses summed over every cache."""
        return sum(counter.misses for counter in self.counters.values())

    @property
    def cache_hit_rate(self) -> float:
        """Overall fraction of cache lookups served from cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> PlannerStats:
        """An immutable snapshot of all counters and stage times."""
        return PlannerStats(
            caching_enabled=self.caching,
            hom_searches=self.hom_searches,
            core_searches=self.core_searches,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            caches=tuple(
                (name, counter.hits, counter.misses)
                for name, counter in sorted(self.counters.items())
            ),
            stages=tuple(self.stage_seconds.items()),
            hom_nodes=self.hom_nodes,
            fast_path_searches=self.fast_path_searches,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlannerContext(caching={self.caching}, "
            f"hom_searches={self.hom_searches}, "
            f"hits={self.cache_hits}, misses={self.cache_misses})"
        )
