"""The unified planner pipeline.

The paper's two-step architecture (Section 1) — a *rewriting generator*
followed by a *cost-based optimizer* — is realized here as one pipeline:

* :class:`~repro.planner.context.PlannerContext` is the shared planning
  substrate threaded through every stage: structural interning
  (:mod:`repro.datalog.interning`), memoized containment
  (:mod:`repro.containment.memo`), tuple-core and view-evaluation caches,
  per-stage wall times, and homomorphism-search counters.
* :mod:`repro.planner.registry` exposes every rewriting algorithm —
  CoreCover, CoreCover*, the naive Theorem 3.1 search, Bucket, MiniCon,
  and inverse rules — as a :class:`RewriterBackend` behind one
  :func:`plan` entry point, with the M1/M2/M3 cost models resolved from
  the parallel :mod:`repro.cost.registry`.

The legacy entry points (``core_cover``, ``core_cover_star``,
``bucket_algorithm``, ``minicon``, ``naive_gmr_search``) remain available
and are thin shims over the registry.

Registry symbols are loaded lazily (PEP 562) so that importing
:mod:`repro.core` — whose modules type against :class:`PlannerContext` —
never triggers the backend modules mid-initialization.
"""

from .context import PlannerContext, PlannerStats
from .limits import (
    AnytimeRewriting,
    BudgetMeter,
    PlanOutcome,
    PlanStatus,
    ResourceBudget,
)

_LAZY = {
    "PlanResult",
    "RewriterBackend",
    "UnknownBackendError",
    "available_backends",
    "get_backend",
    "plan",
    "register_backend",
}

__all__ = sorted(
    {
        "AnytimeRewriting",
        "BudgetMeter",
        "PlanOutcome",
        "PlanStatus",
        "PlannerContext",
        "PlannerStats",
        "ResourceBudget",
    }
    | _LAZY
)


def __getattr__(name):
    if name in _LAZY:
        from . import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
