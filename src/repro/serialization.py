"""Serialization helpers: datalog text and JSON interchange.

Everything the CLI reads and writes is available programmatically here:

* queries and view catalogs round-trip through datalog text (one rule per
  line, ``#`` comments);
* databases round-trip through JSON (``{relation: [[v, ...], ...]}``),
  restricted to JSON-representable scalar values;
* workloads (config + query + views) round-trip through a single JSON
  document, so generated experiment inputs can be archived and replayed.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from .datalog.parser import parse_program, parse_query
from .engine.database import Database
from .views.view import ViewCatalog
from .workload.generator import Workload, WorkloadConfig

_SCALARS = (str, int, float, bool, type(None))


# -- datalog text -----------------------------------------------------------

def catalog_to_text(views: ViewCatalog) -> str:
    """Render a view catalog as a datalog program."""
    return "\n".join(str(view.definition) for view in views) + "\n"


def catalog_from_text(text: str) -> ViewCatalog:
    """Parse a datalog program into a view catalog."""
    return ViewCatalog(parse_program(text))


# -- databases ---------------------------------------------------------------

def database_to_json(database: Database) -> str:
    """Serialize a database to JSON.  Values must be JSON scalars."""
    payload: dict[str, list[list[object]]] = {}
    for relation in database:
        rows = []
        for row in sorted(relation, key=repr):
            for value in row:
                if not isinstance(value, _SCALARS):
                    raise TypeError(
                        f"relation {relation.name!r} holds a non-JSON value "
                        f"{value!r} ({type(value).__name__})"
                    )
            rows.append(list(row))
        payload[relation.name] = rows
    return json.dumps(payload, indent=2, sort_keys=True)


def database_from_json(text: str) -> Database:
    """Deserialize a database from JSON.

    Empty relations cannot be represented (arity is inferred from rows);
    re-register them with :meth:`Database.ensure_relation` if needed.
    """
    payload = json.loads(text)
    database = Database()
    for name, rows in payload.items():
        for row in rows:
            database.add_fact(name, tuple(row))
    return database


# -- workloads ------------------------------------------------------------------

def workload_to_json(workload: Workload) -> str:
    """Serialize a generated workload (config, query, views)."""
    return json.dumps(
        {
            "config": dataclasses.asdict(workload.config),
            "query": str(workload.query),
            "views": [str(v.definition) for v in workload.views],
        },
        indent=2,
    )


def workload_from_json(text: str) -> Workload:
    """Deserialize a workload saved by :func:`workload_to_json`."""
    payload = json.loads(text)
    config = WorkloadConfig(**payload["config"])
    query = parse_query(payload["query"])
    views = ViewCatalog(payload["views"])
    return Workload(query, views, config)


# -- file helpers -----------------------------------------------------------------

def save(text: str, path: str | Path) -> None:
    """Write serialized *text* to *path*."""
    Path(path).write_text(text)


def load(path: str | Path) -> str:
    """Read serialized text from *path*."""
    return Path(path).read_text()
