"""Minimization of conjunctive queries (core computation).

A conjunctive query is *minimal* when no body subgoal can be removed while
preserving equivalence.  The minimal equivalent of a query is unique up to
variable renaming (its *core*).  Minimization is step (1) of the CoreCover
algorithm (Figure 4): "Minimize Q by removing its redundant subgoals."

The implementation repeatedly looks for a homomorphism from the query into
itself that fixes the head and avoids some subgoal; removing all atoms
outside the homomorphism's image strictly shrinks the body and preserves
equivalence.  This folding approach converges to the core in at most
``len(body)`` iterations.
"""

from __future__ import annotations

from ..datalog.query import ConjunctiveQuery
from ..datalog.substitution import Substitution
from .containment import is_contained_in
from .homomorphism import find_homomorphisms, unify_atom


def is_minimal(query: ConjunctiveQuery) -> bool:
    """Whether no single body subgoal of *query* is redundant."""
    deduped = query.dedup_body()
    if len(deduped.body) != len(query.body):
        return False
    for index in range(len(deduped.body)):
        candidate = deduped.without_atom(index)
        if is_contained_in(candidate, deduped):
            return False
    return True


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Return a minimal equivalent of *query* (unique up to renaming).

    The returned query uses only atoms of the original body, so its
    variables are a subset of the original variables.
    """
    current = query.dedup_body()
    changed = True
    while changed:
        changed = False
        for index in range(len(current.body)):
            candidate = current.without_atom(index)
            # Removing an atom can only generalize the query, so
            # ``current ⊑ candidate`` always holds; equivalence reduces to
            # the other direction.
            if _folds_into(current, candidate):
                current = candidate
                changed = True
                break
    return current


def _folds_into(query: ConjunctiveQuery, candidate: ConjunctiveQuery) -> bool:
    """Whether ``candidate ⊑ query`` given candidate's body ⊆ query's body.

    Equivalent to a head-fixing homomorphism from ``query`` into
    ``candidate``; written directly to avoid re-deriving the head seed.
    """
    seed = unify_atom(query.head, candidate.head, Substitution())
    if seed is None:
        return False
    return (
        next(find_homomorphisms(query.body, candidate.body, seed), None) is not None
    )


def core_size(query: ConjunctiveQuery) -> int:
    """Number of subgoals in the minimal equivalent of *query*."""
    return len(minimize(query).body)
