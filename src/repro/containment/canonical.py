"""Canonical (frozen) databases of conjunctive queries (Section 3.3).

The canonical database ``D_Q`` of a query ``Q`` is obtained by *freezing*
the query: each variable is replaced by a distinct fresh constant and each
body subgoal becomes a fact.  View tuples are computed by evaluating the
view definitions on ``D_Q`` and *thawing* the frozen constants back to the
original variables.

Frozen constants are :class:`Constant` objects wrapping a private
:class:`FrozenMarker`, so they can never collide with genuine constants of
the query or views.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery
from ..datalog.substitution import Substitution
from ..datalog.terms import Constant, Term, Variable


@dataclass(frozen=True, slots=True)
class FrozenMarker:
    """The payload of a frozen constant: remembers the original variable."""

    variable_name: str

    def __str__(self) -> str:
        return f"~{self.variable_name}"

    def __repr__(self) -> str:
        return f"FrozenMarker({self.variable_name!r})"


def freeze_variable(variable: Variable) -> Constant:
    """The frozen constant standing for *variable* in a canonical database."""
    return Constant(FrozenMarker(variable.name))


def is_frozen(term: Term) -> bool:
    """Whether *term* is a frozen constant produced by :func:`freeze_variable`."""
    return isinstance(term, Constant) and isinstance(term.value, FrozenMarker)


def thaw_term(term: Term) -> Term:
    """Map a frozen constant back to its variable; other terms unchanged."""
    if is_frozen(term):
        return Variable(term.value.variable_name)
    return term


def thaw_atom(atom: Atom) -> Atom:
    """Thaw every argument of *atom*."""
    return Atom(atom.predicate, tuple(thaw_term(arg) for arg in atom.args))


@dataclass(frozen=True)
class CanonicalDatabase:
    """The canonical database of a query, with its freezing map.

    ``facts`` are the frozen body atoms (fully ground).  ``frozen_head``
    is the frozen head atom, used by the canonical-database containment
    test: ``Q1 ⊑ Q2`` iff evaluating ``Q2`` over ``D_{Q1}`` produces
    ``Q1``'s frozen head tuple.
    """

    query: ConjunctiveQuery
    facts: tuple[Atom, ...]
    frozen_head: Atom
    freezing: Substitution

    def thaw_fact(self, atom: Atom) -> Atom:
        """Thaw a fact (or any atom over frozen constants) back to Q-terms."""
        return thaw_atom(atom)


def canonical_database(query: ConjunctiveQuery) -> CanonicalDatabase:
    """Freeze *query* into its canonical database (Section 3.3).

    Every variable (distinguished or not) is replaced by a distinct frozen
    constant; genuine constants are kept as-is.
    """
    freezing = Substitution(
        {
            variable: freeze_variable(variable)
            for variable in sorted(query.variables(), key=lambda v: v.name)
        }
    )
    frozen = query.apply(freezing)
    return CanonicalDatabase(
        query=query,
        facts=frozen.body,
        frozen_head=frozen.head,
        freezing=freezing,
    )
