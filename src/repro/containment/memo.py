"""Memoized containment operations (the planner's caching layer).

Every stage of the rewriting pipeline — view-equivalence grouping, view
tuples, tuple-cores, the M2/M3 optimizer's rewriting checks — bottoms out
in the same Chandra-Merlin homomorphism search.  A
:class:`ContainmentCache` memoizes the *results* of those searches keyed
on interned structural keys (:mod:`repro.datalog.interning`), so repeated
questions about structurally identical queries are answered without
re-running the backtracking search.

The cache also doubles as the pipeline's instrumentation point: it counts
actual homomorphism searches (via
:func:`repro.containment.homomorphism.observe_searches`) and per-cache
hit/miss rates, which :class:`repro.planner.context.PlannerContext`
surfaces through ``CoreCoverStats``, the CLI, and the benchmarks.

Soundness: keys are purely structural, so two queries only share a key
when they are equal atom-for-atom — a cached answer is always the answer
the underlying function would have computed.  Renamed-but-equivalent
queries get distinct keys (a miss, never a wrong hit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar

from ..datalog.interning import InternTable
from ..datalog.query import ConjunctiveQuery
from ..testing.faults import fire
from .canonical import CanonicalDatabase, canonical_database
from .containment import containment_mapping, is_contained_in
from .homomorphism import cancellation_scope, observe_searches
from .minimize import minimize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.limits import BudgetMeter

__all__ = ["CacheCounter", "ContainmentCache"]

T = TypeVar("T")


@dataclass
class CacheCounter:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class ContainmentCache:
    """Memoizes minimization, canonical databases, and containment tests.

    With ``caching=False`` every operation recomputes (counters still
    track searches), which is how the property tests compare cached and
    cache-disabled runs for identical results.
    """

    def __init__(
        self, interner: InternTable | None = None, *, caching: bool = True
    ) -> None:
        self.interner = interner if interner is not None else InternTable()
        self.caching = caching
        #: Number of homomorphism searches actually performed.
        self.hom_searches = 0
        #: Work units (backtracking entries + candidate unifications +
        #: semijoin tests) expanded by those searches.
        self.hom_nodes = 0
        #: Searches routed through the acyclic join-tree-guided engine.
        self.fast_path_searches = 0
        #: Active resource-budget meter, set by the PlannerContext.  Each
        #: recorded search is charged against it, and its ``checkpoint``
        #: is installed as the backtracking cancellation hook.
        self.meter: "BudgetMeter | None" = None
        self.counters: dict[str, CacheCounter] = {
            "minimize": CacheCounter(),
            "canonical": CacheCounter(),
            "containment": CacheCounter(),
            "mapping": CacheCounter(),
        }
        self._minimize: dict[int, ConjunctiveQuery] = {}
        self._canonical: dict[int, CanonicalDatabase] = {}
        self._containment: dict[tuple[int, int], bool] = {}
        self._mapping: dict[tuple[int, int], bool] = {}

    # -- search accounting ---------------------------------------------------
    def record_search(self) -> None:
        """Observer callback: one homomorphism search was started.

        With a budget meter attached the search is also charged against
        ``max_hom_searches`` (and the deadline re-checked), which is the
        cooperative-cancellation point for search-heavy stages.
        """
        self.hom_searches += 1
        if self.meter is not None:
            self.meter.charge_hom_search()

    def record_nodes(self, nodes: int) -> None:
        """Observer callback: a finished search expanded *nodes* work units."""
        self.hom_nodes += nodes

    def record_fast_path_search(self) -> None:
        """Observer callback: a search ran on the acyclic fast path."""
        self.fast_path_searches += 1

    def observing(self):
        """Context manager attributing homomorphism searches to this cache."""
        return observe_searches(self)

    # -- generic memoization -------------------------------------------------
    def _memoized(
        self,
        counter_name: str,
        cache: dict,
        key,
        compute: Callable[[], T],
    ) -> T:
        fire("cache_lookup")
        counter = self.counters[counter_name]
        if self.caching and key in cache:
            counter.hits += 1
            return cache[key]
        counter.misses += 1
        with self.observing():
            if self.meter is not None:
                # Budget exhaustion raises out of compute() before the
                # store below, so the cache never holds a partial result.
                with cancellation_scope(self.meter.checkpoint):
                    value = compute()
            else:
                value = compute()
        if self.caching:
            cache[key] = value
        return value

    # -- memoized operations ---------------------------------------------------
    def minimize(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        """Memoized :func:`repro.containment.minimize.minimize`."""
        key = self.interner.query_key(query)
        return self._memoized(
            "minimize", self._minimize, key, lambda: minimize(query)
        )

    def canonical_database(self, query: ConjunctiveQuery) -> CanonicalDatabase:
        """Memoized :func:`repro.containment.canonical.canonical_database`."""
        key = self.interner.query_key(query)
        return self._memoized(
            "canonical", self._canonical, key, lambda: canonical_database(query)
        )

    def is_contained_in(
        self, inner: ConjunctiveQuery, outer: ConjunctiveQuery
    ) -> bool:
        """Memoized ``inner ⊑ outer`` (comparison atoms still rejected)."""
        key = (self.interner.query_key(inner), self.interner.query_key(outer))
        return self._memoized(
            "containment",
            self._containment,
            key,
            lambda: is_contained_in(inner, outer),
        )

    def is_equivalent_to(
        self, left: ConjunctiveQuery, right: ConjunctiveQuery
    ) -> bool:
        """Equivalence via two (independently cached) containment tests."""
        return self.is_contained_in(left, right) and self.is_contained_in(
            right, left
        )

    def mapping_exists(
        self, outer: ConjunctiveQuery, inner: ConjunctiveQuery
    ) -> bool:
        """Memoized "some containment mapping from *outer* to *inner* exists".

        Unlike :meth:`is_contained_in` this never rejects comparison
        atoms, matching the raw :func:`containment_mapping` behaviour the
        naive search and Lemma 3.2 transformation rely on.
        """
        key = (self.interner.query_key(outer), self.interner.query_key(inner))
        return self._memoized(
            "mapping",
            self._mapping,
            key,
            lambda: containment_mapping(outer, inner) is not None,
        )

    # -- eviction --------------------------------------------------------------
    def evict_query_keys(self, keys: set) -> int:
        """Drop every cached entry involving one of the interned *keys*.

        Pure memory hygiene for incremental catalog deltas: because keys
        are structural, stale hits are impossible and eviction is never
        required for correctness — it only releases memoized work for
        view definitions that left the catalog.  Returns the number of
        entries dropped.
        """
        dropped = 0
        for cache in (self._minimize, self._canonical):
            for key in [k for k in cache if k in keys]:
                del cache[key]
                dropped += 1
        for cache in (self._containment, self._mapping):
            for pair in [p for p in cache if p[0] in keys or p[1] in keys]:
                del cache[pair]
                dropped += 1
        return dropped

    # -- aggregate counters ----------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Hits summed over all caches."""
        return sum(counter.hits for counter in self.counters.values())

    @property
    def cache_misses(self) -> int:
        """Misses summed over all caches."""
        return sum(counter.misses for counter in self.counters.values())
