"""Chandra-Merlin containment and equivalence of conjunctive queries.

``Q1 ⊑ Q2`` (Definition 2.1) holds iff there is a *containment mapping*
from ``Q2`` to ``Q1``: a homomorphism on the body atoms that also maps the
head of ``Q2`` onto the head of ``Q1`` (Chandra & Merlin 1977, cited as
[5] in the paper).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..datalog.query import ConjunctiveQuery
from ..datalog.substitution import Substitution
from .homomorphism import find_homomorphisms, unify_atom


class IncompatibleQueriesError(ValueError):
    """Raised when comparing queries with different head predicates/arities."""


def head_unifier(source: ConjunctiveQuery, target: ConjunctiveQuery) -> Optional[Substitution]:
    """The substitution sending *source*'s head onto *target*'s head.

    Returns ``None`` when the heads cannot be unified (different
    predicate/arity, constant clash, or one source variable required to map
    to two distinct targets).
    """
    if source.head.predicate != target.head.predicate:
        return None
    return unify_atom(source.head, target.head, Substitution())


def containment_mappings(
    outer: ConjunctiveQuery, inner: ConjunctiveQuery
) -> Iterator[Substitution]:
    """All containment mappings from *outer* to *inner*.

    Each yielded substitution witnesses ``inner ⊑ outer``.
    """
    seed = head_unifier(outer, inner)
    if seed is None:
        return
    yield from find_homomorphisms(outer.body, inner.body, seed)


def containment_mapping(
    outer: ConjunctiveQuery, inner: ConjunctiveQuery
) -> Optional[Substitution]:
    """One containment mapping from *outer* to *inner*, or ``None``."""
    return next(containment_mappings(outer, inner), None)


def is_contained_in(inner: ConjunctiveQuery, outer: ConjunctiveQuery) -> bool:
    """Whether ``inner ⊑ outer`` (the answer of *inner* is always a subset).

    Both queries must be pure conjunctive queries over relational atoms;
    built-in comparison atoms are rejected (see
    :mod:`repro.extensions` notes in the docs for that case).
    """
    _reject_comparisons(inner)
    _reject_comparisons(outer)
    return containment_mapping(outer, inner) is not None


def is_equivalent_to(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Whether the two queries compute the same answer on every database."""
    return is_contained_in(left, right) and is_contained_in(right, left)


def is_properly_contained_in(
    inner: ConjunctiveQuery, outer: ConjunctiveQuery
) -> bool:
    """Whether ``inner ⊑ outer`` but not ``outer ⊑ inner``."""
    return is_contained_in(inner, outer) and not is_contained_in(outer, inner)


def _reject_comparisons(query: ConjunctiveQuery) -> None:
    for atom in query.body:
        if atom.is_comparison:
            raise IncompatibleQueriesError(
                "Chandra-Merlin containment handles pure conjunctive queries; "
                f"comparison atom {atom} is not supported here"
            )
