"""Backtracking homomorphism search between sets of atoms.

A homomorphism from a set of atoms ``S`` to a set of atoms ``T`` is a
substitution ``σ`` on the variables of ``S`` such that ``σ(a) ∈ T`` for
every ``a ∈ S``.  Constants are mapped to themselves.  This is the
computational core of the Chandra-Merlin containment test, of query
minimization, and of the tuple-core computation.

The search indexes target atoms by (predicate, arity), orders source atoms
most-constrained-first, and supports:

* a *seed* substitution (e.g. head unification for containment mappings);
* an *injective* mode in which distinct source terms must receive distinct
  images (used by Lemma 4.1 / Definition 4.1).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional, Protocol, Sequence

from ..datalog.atoms import Atom
from ..datalog.substitution import Substitution
from ..datalog.terms import Constant, Term
from ..testing.faults import fire


class SearchObserver(Protocol):
    """Anything that wants to count homomorphism searches.

    Observers may additionally implement ``record_nodes(count)`` (called
    once per finished search with the number of work items it expanded)
    and ``record_fast_path_search()`` (called when a search is routed
    through the acyclic fast path); both are looked up with ``getattr``
    so minimal observers keep working.
    """

    def record_search(self) -> None:  # pragma: no cover - protocol
        ...


#: The active observer, if any.  A context variable (rather than a plain
#: module global) keeps counting correct under threads and asyncio.
_OBSERVER: ContextVar[Optional[SearchObserver]] = ContextVar(
    "repro_homomorphism_observer", default=None
)


@contextmanager
def observe_searches(observer: SearchObserver) -> Iterator[SearchObserver]:
    """Count every homomorphism search started within the ``with`` block.

    Used by :class:`repro.planner.context.PlannerContext` to attribute
    searches to planning stages; nesting restores the previous observer.
    """
    token = _OBSERVER.set(observer)
    try:
        yield observer
    finally:
        _OBSERVER.reset(token)


#: Cooperative-cancellation hook called on every backtracking node.  A
#: context variable, like the observer, so budgets stay attributed
#: correctly under threads and asyncio.  ``None`` (the default) keeps
#: the unbudgeted search at a single ``is not None`` test per node.
_CHECKPOINT: ContextVar[Optional[Callable[[], None]]] = ContextVar(
    "repro_homomorphism_checkpoint", default=None
)


@contextmanager
def cancellation_scope(checkpoint: Callable[[], None]) -> Iterator[None]:
    """Run *checkpoint* on every backtracking node within the block.

    The planner installs a :meth:`BudgetMeter.checkpoint
    <repro.planner.limits.BudgetMeter.checkpoint>` here so a wall-clock
    deadline can interrupt even a single adversarial search; the raise
    unwinds the backtracking cleanly (no partial state is cached).
    """
    token = _CHECKPOINT.set(checkpoint)
    try:
        yield
    finally:
        _CHECKPOINT.reset(token)


class AcyclicGuide(Protocol):
    """A router deciding per search whether to run the acyclic fast path.

    ``guide`` returns a substitution iterator implementing the whole
    search — contractually yielding **exactly** the substitutions the
    backtracker would, in the same order — or ``None`` to fall back to
    the general backtracking search (cyclic source, comparison atoms,
    trivial bodies).  The concrete implementation is
    :class:`repro.containment.join_guided.AcyclicRouter`.
    """

    def guide(
        self,
        source: Sequence[Atom],
        target: Sequence[Atom],
        seed: Substitution,
        injective: bool,
    ) -> Optional[Iterator[Substitution]]:  # pragma: no cover - protocol
        ...


#: The active acyclic router, if any.  Installed by ``plan()`` (via
#: :meth:`PlannerContext.routed_acyclic`) only when the planned query is
#: alpha-acyclic and the fast path was not disabled; a context variable
#: for the same thread/asyncio reasons as the observer.
_ACYCLIC: ContextVar[Optional[AcyclicGuide]] = ContextVar(
    "repro_homomorphism_acyclic", default=None
)


@contextmanager
def acyclic_scope(guide: AcyclicGuide) -> Iterator[None]:
    """Route eligible searches through *guide* within the block.

    Every :func:`find_homomorphisms` call inside the block offers its
    search to *guide* first; the guide declines (returns ``None``)
    whenever its preconditions do not hold, so installing a scope is
    always safe.  Nesting restores the previous guide.
    """
    token = _ACYCLIC.set(guide)
    try:
        yield
    finally:
        _ACYCLIC.reset(token)


def unify_atom(
    source: Atom, target: Atom, substitution: Substitution
) -> Optional[Substitution]:
    """Extend *substitution* so that it maps *source* onto *target*.

    Returns the extended substitution, or ``None`` if the atoms cannot be
    unified (different predicate/arity, constant mismatch, or a conflicting
    variable binding).
    """
    if source.predicate != target.predicate or source.arity != target.arity:
        return None
    current = substitution
    for source_arg, target_arg in zip(source.args, target.args):
        if isinstance(source_arg, Constant):
            if source_arg != target_arg:
                return None
            continue
        extended = current.extended(source_arg, target_arg)
        if extended is None:
            return None
        current = extended
    return current


def _target_index(target: Sequence[Atom]) -> dict[tuple[str, int], list[Atom]]:
    index: dict[tuple[str, int], list[Atom]] = {}
    for atom in target:
        index.setdefault((atom.predicate, atom.arity), []).append(atom)
    return index


def _ordered_positions(
    source: Sequence[Atom], index: dict[tuple[str, int], list[Atom]]
) -> list[int]:
    """Source atom positions ordered to fail fast.

    Atoms with fewer candidate targets and more constants/repeated
    variables are tried first; ties are broken by the original order to
    keep the search deterministic.  The acyclic fast path reuses this
    exact ordering, which is one half of its bit-identical-enumeration
    contract (the other half is preserving candidate order per atom).
    """

    def constrainedness(item: tuple[int, Atom]) -> tuple[int, int, int]:
        position, atom = item
        candidates = len(index.get((atom.predicate, atom.arity), ()))
        ground_args = sum(1 for arg in atom.args if isinstance(arg, Constant))
        return (candidates, -ground_args, position)

    return [
        position
        for position, _ in sorted(enumerate(source), key=constrainedness)
    ]


def _ordered_sources(
    source: Sequence[Atom], index: dict[tuple[str, int], list[Atom]]
) -> list[Atom]:
    """The source atoms in :func:`_ordered_positions` order."""
    return [source[position] for position in _ordered_positions(source, index)]


def _source_terms(source: Sequence[Atom]) -> set[Term]:
    terms: set[Term] = set()
    for atom in source:
        terms.update(atom.args)
    return terms


def _is_injective(substitution: Substitution, terms: set[Term]) -> bool:
    images = set()
    for term in terms:
        image = substitution.apply_term(term)
        if image in images:
            return False
        images.add(image)
    return True


def find_homomorphisms(
    source: Sequence[Atom],
    target: Sequence[Atom],
    seed: Substitution = Substitution(),
    injective: bool = False,
) -> Iterator[Substitution]:
    """Yield every homomorphism from *source* into *target* extending *seed*.

    With ``injective=True``, only substitutions under which all distinct
    terms of *source* have distinct images are yielded (constants are their
    own images, so a variable may then never map to a constant occurring in
    *source*).
    """
    # Count the search eagerly (this is a plain function returning a
    # generator, so observers see the search even if it is never consumed).
    # The fault point fires first so an injected stall is visible to the
    # budget charge the observer performs.
    fire("hom_search")
    observer = _OBSERVER.get()
    if observer is not None:
        observer.record_search()
    guide = _ACYCLIC.get()
    if guide is not None:
        guided = guide.guide(source, target, seed, injective)
        if guided is not None:
            if observer is not None:
                record = getattr(observer, "record_fast_path_search", None)
                if record is not None:
                    record()
            return guided
    return _search(source, target, seed, injective)


def _search(
    source: Sequence[Atom],
    target: Sequence[Atom],
    seed: Substitution,
    injective: bool,
) -> Iterator[Substitution]:
    index = _target_index(target)
    ordered = _ordered_sources(source, index)
    all_terms = _source_terms(source) if injective else set()
    checkpoint = _CHECKPOINT.get()
    observer = _OBSERVER.get()
    record_nodes = (
        getattr(observer, "record_nodes", None) if observer is not None else None
    )
    # Nodes count units of work, not just recursion depth: one per
    # backtracking entry plus one per candidate unification attempted.
    # The acyclic fast path reports the same units (including its
    # semijoin work), so the two engines' node counts are comparable.
    nodes = 0

    def backtrack(position: int, substitution: Substitution) -> Iterator[Substitution]:
        nonlocal nodes
        nodes += 1
        if checkpoint is not None:
            checkpoint()
        if position == len(ordered):
            if not injective or _is_injective(substitution, all_terms):
                yield substitution
            return
        atom = ordered[position]
        for candidate in index.get((atom.predicate, atom.arity), ()):
            nodes += 1
            extended = unify_atom(atom, candidate, substitution)
            if extended is not None:
                yield from backtrack(position + 1, extended)

    try:
        yield from backtrack(0, seed)
    finally:
        # Flush even on early close (e.g. ``find_homomorphism`` taking
        # only the first solution): closing the generator runs this.
        if record_nodes is not None and nodes:
            record_nodes(nodes)


def find_homomorphism(
    source: Sequence[Atom],
    target: Sequence[Atom],
    seed: Substitution = Substitution(),
    injective: bool = False,
) -> Optional[Substitution]:
    """Return one homomorphism from *source* into *target*, or ``None``."""
    return next(find_homomorphisms(source, target, seed, injective), None)


def has_homomorphism(
    source: Sequence[Atom],
    target: Sequence[Atom],
    seed: Substitution = Substitution(),
) -> bool:
    """Whether any homomorphism from *source* into *target* extends *seed*."""
    return find_homomorphism(source, target, seed) is not None
