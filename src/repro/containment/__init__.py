"""Containment substrate: homomorphisms, Chandra-Merlin tests, minimization."""

from .canonical import (
    CanonicalDatabase,
    FrozenMarker,
    canonical_database,
    freeze_variable,
    is_frozen,
    thaw_atom,
    thaw_term,
)
from .containment import (
    IncompatibleQueriesError,
    containment_mapping,
    containment_mappings,
    head_unifier,
    is_contained_in,
    is_equivalent_to,
    is_properly_contained_in,
)
from .homomorphism import (
    find_homomorphism,
    find_homomorphisms,
    has_homomorphism,
    observe_searches,
    unify_atom,
)
from .memo import CacheCounter, ContainmentCache
from .minimize import core_size, is_minimal, minimize

__all__ = [
    "CacheCounter",
    "CanonicalDatabase",
    "ContainmentCache",
    "FrozenMarker",
    "IncompatibleQueriesError",
    "canonical_database",
    "containment_mapping",
    "containment_mappings",
    "core_size",
    "find_homomorphism",
    "find_homomorphisms",
    "freeze_variable",
    "has_homomorphism",
    "head_unifier",
    "is_contained_in",
    "is_equivalent_to",
    "is_frozen",
    "is_minimal",
    "is_properly_contained_in",
    "minimize",
    "observe_searches",
    "thaw_atom",
    "thaw_term",
    "unify_atom",
]
