"""Join-tree-guided homomorphism search — the acyclic fast path.

For an alpha-acyclic source, the Chandra-Merlin search need not be a
blind backtracking walk: Yannakakis' semijoin program over a join tree
filters each atom's candidate-target list in two linear passes
(bottom-up, then top-down), after which almost every surviving candidate
participates in a full homomorphism.  This module implements that
filtering and then re-runs **the ordinary backtracking loop over the
filtered candidate lists** — same atom order, same candidate order —
which is what makes the fast path *bit-identical* to the general path:

* atom order comes from :func:`~repro.containment.homomorphism._ordered_positions`
  (shared with the backtracker);
* each filtered candidate list preserves the target-index order the
  backtracker scans;
* a pruned candidate provably extends to no homomorphism (the semijoin
  only removes a candidate when some adjacent source atom has no
  seed-consistent target agreeing on their shared variables), so the
  surviving search yields exactly the same substitutions, in exactly the
  same order — only the dead branches disappear.

Injectivity is still checked at the leaves exactly as in the general
path (semijoin filtering is sound for it: every injective homomorphism
is a homomorphism, so its candidates always survive).

The router falls back (returns ``None``) for cyclic sources, sources
containing comparison atoms, and trivial (< 2 atom) sources; the caller
(:func:`~repro.containment.homomorphism.find_homomorphisms`) then runs
the general backtracker.  Cooperative cancellation works mid-semijoin:
the active :func:`~repro.containment.homomorphism.cancellation_scope`
checkpoint is called per candidate examined, so a budget can expire
before any backtracking starts.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..datalog.atoms import Atom
from ..datalog.hypergraph import JoinTree, join_tree_of_atoms
from ..datalog.substitution import Substitution
from ..datalog.terms import Variable
from .homomorphism import (
    _CHECKPOINT,
    _OBSERVER,
    _is_injective,
    _ordered_positions,
    _source_terms,
    _target_index,
    unify_atom,
)

__all__ = ["AcyclicRouter"]


class AcyclicRouter:
    """Per-context router implementing the ``AcyclicGuide`` protocol.

    One router lives on each :class:`~repro.planner.context.PlannerContext`
    (shared across every search of a planning session); it memoizes join
    trees per source-atoms tuple, so repeated searches over the same
    body — the common case under the containment cache's misses — pay
    for ear elimination once.
    """

    def __init__(self) -> None:
        #: Join tree per source tuple; ``None`` records "not eligible".
        self._trees: dict[tuple[Atom, ...], JoinTree | None] = {}
        #: Searches actually routed through the guided engine.
        self.guided_searches = 0

    def tree_for(self, source: Sequence[Atom]) -> JoinTree | None:
        """The memoized join tree of *source*, or ``None`` if ineligible."""
        key = tuple(source)
        try:
            return self._trees[key]
        except KeyError:
            pass
        if len(key) < 2 or any(atom.is_comparison for atom in key):
            tree = None
        else:
            tree = join_tree_of_atoms(key)
        self._trees[key] = tree
        return tree

    def guide(
        self,
        source: Sequence[Atom],
        target: Sequence[Atom],
        seed: Substitution,
        injective: bool,
    ) -> Optional[Iterator[Substitution]]:
        """A guided search iterator, or ``None`` to use the backtracker."""
        tree = self.tree_for(source)
        if tree is None:
            return None
        self.guided_searches += 1
        return _guided_search(
            tuple(source), tuple(target), seed, injective, tree
        )


def _guided_search(
    source: tuple[Atom, ...],
    target: tuple[Atom, ...],
    seed: Substitution,
    injective: bool,
    tree: JoinTree,
) -> Iterator[Substitution]:
    index = _target_index(target)
    ordered = _ordered_positions(source, index)
    all_terms = _source_terms(source) if injective else set()
    checkpoint = _CHECKPOINT.get()
    observer = _OBSERVER.get()
    record_nodes = (
        getattr(observer, "record_nodes", None) if observer is not None else None
    )
    # Node accounting stays honest across engines: every unit of work —
    # a candidate unification, a semijoin membership test, a backtracking
    # call — counts as one node, so the fast path's reported node counts
    # include the filtering work it does instead of backtracking.
    nodes = 0

    try:
        # Per-atom seed-consistent candidates, in target-index order (the
        # order the backtracker scans).  Each entry keeps the binding of
        # the atom's variables for the semijoin projections below.
        candidates: list[list[tuple[Atom, Substitution]]] = []
        for atom in source:
            row: list[tuple[Atom, Substitution]] = []
            for candidate in index.get((atom.predicate, atom.arity), ()):
                nodes += 1
                if checkpoint is not None:
                    checkpoint()
                extended = unify_atom(atom, candidate, seed)
                if extended is not None:
                    row.append((candidate, extended))
            if not row:
                return  # some atom has no candidate: no homomorphism
            candidates.append(row)

        variables = [frozenset(atom.variable_set()) for atom in source]

        def shared_of(child: int, parent: int) -> tuple[Variable, ...]:
            return tuple(
                sorted(variables[child] & variables[parent], key=repr)
            )

        def semijoin(kept: int, against: int) -> bool:
            """Filter *kept*'s candidates by agreement with *against*.

            Returns ``False`` when *kept* has no candidate left (no
            homomorphism exists at all).
            """
            nonlocal nodes
            shared = shared_of(kept, against)
            if not shared:
                return True
            keys = set()
            for _, binding in candidates[against]:
                nodes += 1
                if checkpoint is not None:
                    checkpoint()
                keys.add(tuple(binding.apply_term(v) for v in shared))
            survivors = []
            for entry in candidates[kept]:
                nodes += 1
                if checkpoint is not None:
                    checkpoint()
                if tuple(entry[1].apply_term(v) for v in shared) in keys:
                    survivors.append(entry)
            if not survivors:
                return False
            candidates[kept] = survivors
            return True

        # Bottom-up: in elimination order, parent ⋉ child.
        for slot, child in enumerate(tree.order):
            parent = tree.parent[slot]
            if parent == -1:
                continue
            if not semijoin(parent, child):
                return
        # Top-down: in reverse order, child ⋉ parent.
        for slot in range(len(tree.order) - 1, -1, -1):
            child = tree.order[slot]
            parent = tree.parent[slot]
            if parent == -1:
                continue
            if not semijoin(child, parent):
                return

        # The general path's backtracking loop, verbatim, over the
        # filtered candidate lists.  ``unify_atom`` re-derives each
        # extension from the running substitution so the yielded
        # substitutions are built through the identical call chain.
        def backtrack(
            position: int, substitution: Substitution
        ) -> Iterator[Substitution]:
            nonlocal nodes
            nodes += 1
            if checkpoint is not None:
                checkpoint()
            if position == len(ordered):
                if not injective or _is_injective(substitution, all_terms):
                    yield substitution
                return
            source_position = ordered[position]
            atom = source[source_position]
            for candidate, _ in candidates[source_position]:
                nodes += 1
                extended = unify_atom(atom, candidate, substitution)
                if extended is not None:
                    yield from backtrack(position + 1, extended)

        yield from backtrack(0, seed)
    finally:
        if record_nodes is not None and nodes:
            record_nodes(nodes)
