"""The structured exception taxonomy shared by every layer.

Everything the package raises *by design* derives from :class:`ReproError`,
so callers embedding the planner (the CLI, the mediator, a serving tier)
can distinguish

* **input errors** — the query or view text is malformed
  (:class:`ParseError` and its refinements
  :class:`UnsafeQueryError`, :class:`ArityMismatchError`,
  :class:`DuplicateViewError`), a referenced view does not exist
  (:class:`UnknownViewError`), or the query falls outside the supported
  fragment (:class:`UnsupportedQueryError`); from
* **resource errors** — a :class:`repro.planner.limits.ResourceBudget`
  was exhausted (:class:`BudgetExceededError`), which in non-strict mode
  the planner converts into an anytime
  :class:`~repro.planner.limits.PlanOutcome` instead of raising.

Backwards compatibility: the refined classes keep subclassing the
built-in exceptions historically raised at the same sites
(``ValueError`` for parse/validation problems, ``KeyError`` for missing
views, ``LookupError`` for registry misses), so pre-existing ``except``
clauses keep working.

Each class carries a distinct ``exit_code`` (sysexits-style, ≥ 64) which
the CLI maps to its process exit status alongside a one-line structured
error on stderr; see :func:`structured_error`.
"""

from __future__ import annotations

import json

__all__ = [
    "ArityMismatchError",
    "BudgetExceededError",
    "DuplicateViewError",
    "MalformedQueryError",
    "ParseError",
    "ReproError",
    "UnknownViewError",
    "UnsafeQueryError",
    "UnsupportedQueryError",
    "structured_error",
]


class ReproError(Exception):
    """Base class of every error the package raises by design."""

    #: CLI process exit status for this error family.
    exit_code = 70  # EX_SOFTWARE: unclassified internal error


class ParseError(ReproError, ValueError):
    """The input text is not valid datalog (syntax or structure).

    Messages include the source position (offset, line, column) where
    the tokenizer/parser can pinpoint one.
    """

    exit_code = 65  # EX_DATAERR


#: Historical name for structural query problems; kept as a
#: :class:`ParseError` refinement so old ``except MalformedQueryError``
#: clauses keep catching exactly what they used to.
class MalformedQueryError(ParseError):
    """A query violates a structural requirement (e.g. safety)."""


class UnsafeQueryError(MalformedQueryError):
    """A head variable does not occur in the body (Section 2.1 safety)."""

    exit_code = 66


class ArityMismatchError(ParseError):
    """One predicate is used with inconsistent arities."""

    exit_code = 67


class DuplicateViewError(ParseError):
    """Two views in one catalog share a name."""

    exit_code = 71


class UnknownViewError(ReproError, KeyError):
    """A referenced view is not registered in the catalog."""

    exit_code = 68

    def __str__(self) -> str:  # KeyError would render repr(args[0])
        return self.args[0] if self.args else ""


class UnsupportedQueryError(ReproError, ValueError):
    """The query/views fall outside the algorithm's supported fragment."""

    exit_code = 72


class BudgetExceededError(ReproError):
    """A resource budget was exhausted (strict mode, or mid-pipeline).

    ``resource`` names the exhausted dimension (``"deadline"``,
    ``"hom_searches"``, ``"view_tuples"``, ``"rewritings"``, or
    ``"fault-injection"`` when raised by the chaos harness).  In
    non-strict mode :func:`repro.planner.plan` catches this and returns a
    ``BUDGET_EXHAUSTED`` :class:`~repro.planner.limits.PlanOutcome`
    carrying the best-so-far rewritings instead.
    """

    exit_code = 69

    def __init__(self, message: str, *, resource: str | None = None) -> None:
        super().__init__(message)
        self.resource = resource


def structured_error(error: BaseException) -> str:
    """A one-line JSON rendering of *error* for machine-readable stderr."""
    exit_code = getattr(error, "exit_code", 70)
    return json.dumps(
        {
            "error": type(error).__name__,
            "exit_code": exit_code,
            "message": str(error),
        },
        default=str,
    )
