"""The structured exception taxonomy shared by every layer.

Everything the package raises *by design* derives from :class:`ReproError`,
so callers embedding the planner (the CLI, the mediator, a serving tier)
can distinguish

* **input errors** — the query or view text is malformed
  (:class:`ParseError` and its refinements
  :class:`UnsafeQueryError`, :class:`ArityMismatchError`,
  :class:`DuplicateViewError`), a referenced view does not exist
  (:class:`UnknownViewError`), or the query falls outside the supported
  fragment (:class:`UnsupportedQueryError`); from
* **resource errors** — a :class:`repro.planner.limits.ResourceBudget`
  was exhausted (:class:`BudgetExceededError`), which in non-strict mode
  the planner converts into an anytime
  :class:`~repro.planner.limits.PlanOutcome` instead of raising; from
* **service errors** — the :mod:`repro.service` resilient executor ran
  out of options: every backend in the failover chain failed
  (:class:`RetryExhaustedError`), every breaker was open
  (:class:`CircuitOpenError`), a parallel worker died mid-request
  (:class:`WorkerCrashError`), or the on-disk plan cache is unusable
  (:class:`CacheCorruptionError`); all derive from
  :class:`ServiceError`.  The :mod:`repro.serve` daemon adds two
  admission-control refinements: the request was load-shed at intake
  (:class:`OverloadError`, with a ``Retry-After``-style hint) or the
  daemon is draining and no longer admits work
  (:class:`ShuttingDownError`); and one durability refinement: a
  catalog recovered from the write-ahead journal failed content-root
  verification and is quarantined (:class:`CatalogCorruptionError`).

Backwards compatibility: the refined classes keep subclassing the
built-in exceptions historically raised at the same sites
(``ValueError`` for parse/validation problems, ``KeyError`` for missing
views, ``LookupError`` for registry misses), so pre-existing ``except``
clauses keep working.

Each class carries a distinct ``exit_code`` (sysexits-style, ≥ 64) which
the CLI maps to its process exit status alongside a one-line structured
error on stderr; see :func:`structured_error`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = [
    "AnalysisError",
    "ArityMismatchError",
    "BudgetExceededError",
    "CacheCorruptionError",
    "CatalogCorruptionError",
    "CircuitOpenError",
    "DuplicateViewError",
    "MalformedQueryError",
    "OverloadError",
    "ParseError",
    "ReproError",
    "RetryExhaustedError",
    "ServiceError",
    "ShuttingDownError",
    "SourceSpan",
    "UnknownViewError",
    "UnsafeQueryError",
    "UnsupportedQueryError",
    "WorkerCrashError",
    "structured_error",
]


@dataclass(frozen=True)
class SourceSpan:
    """A half-open ``[start, end)`` character range in some source text.

    ``line``/``column`` are 1-based and locate ``start``.  Spans are
    attached to parse-level errors (``error.span``) and to the atoms and
    rules recorded in a :class:`repro.datalog.parser.SourceMap`, which is
    what lets the :mod:`repro.analysis` lint engine point a diagnostic at
    the exact source range that caused it.
    """

    start: int
    end: int
    line: int = 1
    column: int = 1

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        """Number of characters covered."""
        return self.end - self.start

    def shifted(self, *, offset: int = 0, lines: int = 0) -> "SourceSpan":
        """This span translated by *offset* characters and *lines* lines."""
        return SourceSpan(
            self.start + offset, self.end + offset, self.line + lines, self.column
        )

    def to_json(self) -> dict:
        """A JSON-ready rendering (used by ``structured_error`` and SARIF)."""
        return {
            "start": self.start,
            "end": self.end,
            "line": self.line,
            "column": self.column,
        }

    def __str__(self) -> str:
        return f"offset {self.start} (line {self.line}, column {self.column})"


class ReproError(Exception):
    """Base class of every error the package raises by design.

    Errors raised while processing *source text* (parsing, linting) carry
    an optional :class:`SourceSpan` in ``span`` locating the problem.
    """

    #: CLI process exit status for this error family.
    exit_code = 70  # EX_SOFTWARE: unclassified internal error

    def __init__(self, *args: object, span: SourceSpan | None = None) -> None:
        super().__init__(*args)
        self.span = span


class ParseError(ReproError, ValueError):
    """The input text is not valid datalog (syntax or structure).

    Messages include the source position (offset, line, column) where
    the tokenizer/parser can pinpoint one.
    """

    exit_code = 65  # EX_DATAERR


#: Historical name for structural query problems; kept as a
#: :class:`ParseError` refinement so old ``except MalformedQueryError``
#: clauses keep catching exactly what they used to.
class MalformedQueryError(ParseError):
    """A query violates a structural requirement (e.g. safety)."""


class UnsafeQueryError(MalformedQueryError):
    """A head variable does not occur in the body (Section 2.1 safety)."""

    exit_code = 66


class ArityMismatchError(ParseError):
    """One predicate is used with inconsistent arities."""

    exit_code = 67


class DuplicateViewError(ParseError):
    """Two views in one catalog share a name."""

    exit_code = 71


class UnknownViewError(ReproError, KeyError):
    """A referenced view is not registered in the catalog."""

    exit_code = 68

    def __str__(self) -> str:  # KeyError would render repr(args[0])
        return self.args[0] if self.args else ""


class UnsupportedQueryError(ReproError, ValueError):
    """The query/views fall outside the algorithm's supported fragment."""

    exit_code = 72


class AnalysisError(ReproError):
    """Static analysis found (or was asked to fail on) lint diagnostics.

    Raised by ``repro lint`` when diagnostics at or above the configured
    ``--fail-on`` severity are present, and by ``plan(preflight=True)``
    callers that ask for strict preflight.  ``diagnostics`` carries the
    offending :class:`repro.analysis.Diagnostic` records.
    """

    exit_code = 73

    def __init__(
        self,
        message: str,
        *,
        diagnostics: tuple = (),
        span: SourceSpan | None = None,
    ) -> None:
        super().__init__(message, span=span)
        self.diagnostics = tuple(diagnostics)


class BudgetExceededError(ReproError):
    """A resource budget was exhausted (strict mode, or mid-pipeline).

    ``resource`` names the exhausted dimension (``"deadline"``,
    ``"hom_searches"``, ``"view_tuples"``, ``"rewritings"``, or
    ``"fault-injection"`` when raised by the chaos harness).  In
    non-strict mode :func:`repro.planner.plan` catches this and returns a
    ``BUDGET_EXHAUSTED`` :class:`~repro.planner.limits.PlanOutcome`
    carrying the best-so-far rewritings instead.
    """

    exit_code = 69

    def __init__(self, message: str, *, resource: str | None = None) -> None:
        super().__init__(message)
        self.resource = resource


class ServiceError(ReproError):
    """Base class of the resilient-executor error family.

    Raised by :mod:`repro.service` when supervised execution — retries,
    circuit breakers, failover, the plan cache — cannot produce a
    certified answer.  The refinements carry the exit codes the
    ``repro batch`` subcommand maps to its process status.
    """

    exit_code = 70


class RetryExhaustedError(ServiceError):
    """Every backend in the failover chain was tried and failed.

    ``attempts`` counts planning attempts across the whole chain;
    ``failures`` maps backend name to the final exception it produced
    (or the reason it was skipped).
    """

    exit_code = 74

    def __init__(
        self,
        message: str,
        *,
        attempts: int = 0,
        failures: dict[str, BaseException] | None = None,
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.failures = dict(failures or {})


class CircuitOpenError(ServiceError):
    """A backend was skipped because its circuit breaker is open.

    Raised to the caller only when *every* backend in the chain was
    circuit-open (otherwise failover absorbs it); ``retry_after``
    estimates seconds until the earliest breaker half-opens.
    """

    exit_code = 75

    def __init__(
        self,
        message: str,
        *,
        backend: str | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.retry_after = retry_after


class WorkerCrashError(ServiceError):
    """A parallel worker died or stalled while holding one request.

    Raised into the ``failed`` outcome line of exactly the request the
    dead worker was serving — sibling requests in the same batch are
    unaffected, because the process pool replaces the worker and lost
    tasks are detected per-line by the parent's task timeout.
    ``request_id`` echoes the lost request when known.
    """

    exit_code = 77

    def __init__(self, message: str, *, request_id: str | None = None) -> None:
        super().__init__(message)
        self.request_id = request_id


class CacheCorruptionError(ServiceError):
    """A plan-cache entry or the cache store itself is unusable.

    In the default (lenient) mode the cache converts entry-level
    corruption — torn writes, bit flips, truncation, checksum
    mismatches — into a *miss* and only counts it; this error reaches
    the caller when the cache root itself is unusable (e.g. the path is
    a file) or when strict mode asks corruption to be fatal.
    """

    exit_code = 76

    def __init__(self, message: str, *, path: str | None = None) -> None:
        super().__init__(message)
        self.path = path


class OverloadError(ServiceError):
    """The serving tier shed this request at admission (backpressure).

    Raised by the :mod:`repro.serve` admission controller when the
    bounded intake queue is full or a per-tenant token bucket is empty —
    *before* any planning work is spent.  ``retry_after`` is the
    ``Retry-After``-style hint (seconds) rendered into the structured
    error; ``reason`` names the shedding trigger (``"queue_full"`` or
    ``"rate_limited"``); ``queue_depth`` is the intake depth observed at
    shed time when known.
    """

    exit_code = 78

    def __init__(
        self,
        message: str,
        *,
        retry_after: float | None = None,
        reason: str | None = None,
        queue_depth: int | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason
        self.queue_depth = queue_depth


class CatalogCorruptionError(ServiceError):
    """A durably stored catalog failed integrity verification on recovery.

    Raised by the :mod:`repro.serve` catalog registry when a catalog
    rebuilt from the write-ahead journal / snapshot does not re-derive
    the ``catalog_content_root`` recorded at commit time (or cannot be
    rebuilt at all): the catalog is **quarantined** — requests naming it
    get this error instead of plans computed from wrong view
    definitions.  Re-registering the catalog over the wire clears the
    quarantine.  ``catalog`` names the quarantined catalog;
    ``expected_root``/``actual_root`` carry the mismatched fingerprints
    when root verification is what failed.
    """

    exit_code = 80

    def __init__(
        self,
        message: str,
        *,
        catalog: str | None = None,
        expected_root: str | None = None,
        actual_root: str | None = None,
        diagnostics: tuple = (),
    ) -> None:
        super().__init__(message)
        self.catalog = catalog
        self.expected_root = expected_root
        self.actual_root = actual_root
        self.diagnostics = tuple(diagnostics)


class ShuttingDownError(ServiceError):
    """The daemon is draining and no longer admits new requests.

    Raised at admission once a graceful drain (SIGTERM or a ``drain``
    control message) has begun: in-flight requests finish within the
    drain deadline, but new work must go elsewhere.  ``retry_after``
    hints how long the drain may take when known — after that a
    replacement instance is expected to be serving.
    """

    exit_code = 79

    def __init__(
        self, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def structured_error(error: BaseException) -> str:
    """A one-line JSON rendering of *error* for machine-readable stderr."""
    exit_code = getattr(error, "exit_code", 70)
    payload = {
        "error": type(error).__name__,
        "exit_code": exit_code,
        "message": str(error),
    }
    span = getattr(error, "span", None)
    if isinstance(span, SourceSpan):
        payload["span"] = span.to_json()
    # The Retry-After-style backpressure hint (OverloadError,
    # CircuitOpenError, ShuttingDownError) rides along so clients can
    # back off without parsing the message text.
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = round(float(retry_after), 3)
    # AnalysisError rejections carry their offending diagnostics, so a
    # serve client (or CI log scraper) sees *which* findings failed the
    # gate, not just how many.
    diagnostics = getattr(error, "diagnostics", None)
    if diagnostics:
        payload["diagnostics"] = [
            item.to_json() if hasattr(item, "to_json") else item
            for item in diagnostics
        ]
    return json.dumps(payload, default=str)
