"""Named multi-tenant catalog registry for the serve daemon.

``repro batch`` ships the whole view catalog with the process; a
resident daemon instead lets tenants **register** a named catalog once
and then reference it per request (``{"catalog": "tenant-a", ...}``) —
requests stop re-shipping view definitions, and the per-worker warm
:class:`~repro.parallel.pool.PlannerContextPool` keys on the catalog's
content fingerprint, so repeated requests hit warm contexts.

Updates go through :meth:`ViewCatalog.add_view` / ``remove_view`` /
``replace_view``, which emit :class:`~repro.views.view.CatalogDelta`
records and advance the catalog's version and Merkle content root
in place.  Because worker-side context pools fingerprint catalogs
structurally (per-view hashes), a small update delta-upgrades warm
contexts instead of cold-starting them — the ``delta_hits`` counter in
``stats`` is this machinery paying off.

With ``audit_fail_on`` set, every registration and update runs the
incremental catalog audit (:mod:`repro.analysis.catalog`) as a
**preflight**: a catalog whose findings reach the configured severity is
rejected with :class:`~repro.errors.AnalysisError` (exit 73 on the
client) *before* it becomes visible to plan requests — a registration
never installs, and an update rolls its deltas back, leaving the
previously accepted content in place.  One persistent
:class:`~repro.analysis.catalog.CatalogAuditor` per catalog name keeps
the audit incremental: an update re-analyzes only the changed views and
their predicate-index neighbors.

The registry is mutated only from the daemon's event-loop thread;
the lock exists for cross-thread readers (``stats`` snapshots from
tests and benchmarks).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, Mapping

from ..analysis.diagnostics import Severity
from ..errors import AnalysisError, ParseError, UnknownViewError
from ..views.view import CatalogDelta, ViewCatalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.catalog import AuditReport, CatalogAuditor

__all__ = ["CatalogRegistry"]


class CatalogRegistry:
    """Named, versioned view catalogs, one per registering tenant."""

    def __init__(self, *, audit_fail_on: str | None = None) -> None:
        self._catalogs: dict[str, ViewCatalog] = {}
        self._lock = threading.Lock()
        self.registrations = 0
        self.updates = 0
        if audit_fail_on in (None, "never"):
            self._audit_threshold: Severity | None = None
        else:
            self._audit_threshold = Severity.from_name(audit_fail_on)
        #: Per-catalog persistent auditors (incremental across updates).
        self._auditors: dict[str, "CatalogAuditor"] = {}
        #: Last accepted audit report per catalog (for ``stats``).
        self._reports: dict[str, "AuditReport"] = {}
        self.audits = 0
        self.audit_rejections = 0

    @property
    def auditing(self) -> bool:
        """Whether registrations/updates run the audit preflight."""
        return self._audit_threshold is not None

    def _audit(self, name: str, catalog: ViewCatalog) -> "AuditReport":
        """Audit *catalog* with the persistent per-name auditor.

        Raises :class:`~repro.errors.AnalysisError` when findings reach
        the configured severity; the caller must not install/keep the
        offending content.  On success the report is retained for
        ``stats``.
        """
        from ..analysis.catalog import CatalogAuditor

        assert self._audit_threshold is not None
        auditor = self._auditors.get(name)
        if auditor is None:
            auditor = self._auditors[name] = CatalogAuditor()
        report = auditor.audit(catalog)
        self.audits += 1
        offending = report.at_least(self._audit_threshold)
        if offending:
            self.audit_rejections += 1
            raise AnalysisError(
                f"catalog {name!r} rejected by audit preflight: "
                f"{len(offending)} diagnostic(s) at or above "
                f"{self._audit_threshold.name.lower()} severity",
                diagnostics=tuple(offending),
            )
        self._reports[name] = report
        return report

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._catalogs

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._catalogs))

    def get(self, name: str) -> ViewCatalog:
        """The catalog registered under *name* (taxonomy error if none)."""
        with self._lock:
            try:
                return self._catalogs[name]
            except KeyError:
                raise UnknownViewError(
                    f"unknown catalog {name!r}; register it first with a "
                    '{"type": "catalog", "action": "register"} message'
                ) from None

    def resolve(
        self, name: str | None, default: ViewCatalog | None
    ) -> ViewCatalog:
        """The catalog a plan request should run against."""
        if name is not None:
            return self.get(str(name))
        if default is None:
            raise UnknownViewError(
                "request names no catalog and the daemon has no default "
                "(--views); register a catalog or pass \"catalog\""
            )
        return default

    def register(self, name: str, views: Iterable[str]) -> dict:
        """Create (or wholly replace) the catalog under *name*.

        With auditing enabled the catalog is audited *before* it is
        installed: a rejected registration leaves any previously
        registered content untouched.
        """
        if not name:
            raise ParseError('catalog "name" must be a non-empty string')
        catalog = ViewCatalog(str(text) for text in views)
        ack = {
            "catalog": name,
            "action": "register",
            "views": len(catalog),
            "version": catalog.version,
            "content_root": catalog.content_root(),
        }
        if self.auditing:
            report = self._audit(name, catalog)
            ack["audit"] = _audit_ack(report)
        with self._lock:
            ack["replaced"] = name in self._catalogs
            self._catalogs[name] = catalog
            self.registrations += 1
        return ack

    def update(
        self,
        name: str,
        *,
        add: Iterable[str] = (),
        remove: Iterable[str] = (),
        replace: Iterable[str] = (),
    ) -> dict:
        """Apply incremental deltas to a registered catalog.

        Removals run first (so a rename expressed as remove+add is
        order-independent), then replacements, then additions.  Every
        mutation's :class:`~repro.views.view.CatalogDelta` is echoed in
        the acknowledgement so the client can audit exactly what
        changed and at which version.
        """
        catalog = self.get(name)
        deltas: list[CatalogDelta] = []
        for view_name in remove:
            deltas.append(catalog.remove_view(str(view_name)))
        for text in replace:
            deltas.append(catalog.replace_view(str(text)))
        for text in add:
            deltas.append(catalog.add_view(str(text)))
        ack = {
            "catalog": name,
            "action": "update",
            "deltas": [str(delta) for delta in deltas],
            "views": len(catalog),
            "version": catalog.version,
            "content_root": catalog.content_root(),
        }
        if self.auditing:
            try:
                report = self._audit(name, catalog)
            except AnalysisError:
                _roll_back(catalog, deltas)
                raise
            ack["audit"] = _audit_ack(report)
        with self._lock:
            self.updates += 1
        return ack

    def stats(self) -> Mapping[str, dict]:
        """Per-catalog introspection for the ``stats`` message."""
        with self._lock:
            catalogs = dict(self._catalogs)
            reports = dict(self._reports)
        snapshot = {}
        for name, catalog in sorted(catalogs.items()):
            entry = {
                "views": len(catalog),
                "version": catalog.version,
                "content_root": catalog.content_root(),
            }
            report = reports.get(name)
            if report is not None:
                entry["diagnostics"] = {
                    "error": len(report.errors),
                    "warning": len(report.warnings),
                    "info": len(report.infos),
                }
            snapshot[name] = entry
        return snapshot


def _audit_ack(report: "AuditReport") -> dict:
    """The audit summary attached to a register/update acknowledgement."""
    return {
        "diagnostics": report.counts(),
        "views_analyzed": report.views_analyzed,
        "views_reused": report.views_reused,
    }


def _roll_back(catalog: ViewCatalog, deltas: Iterable[CatalogDelta]) -> None:
    """Undo *deltas* (newest first) after a rejected audit.

    Inverses restore the exact pre-update *content* (the Merkle root
    matches) — a re-added removed view returns at the end of the
    registration order, which no plan result and no audit fingerprint
    observes, though pair-rule attribution ("older"/"newer") can shift.
    """
    for delta in reversed(list(deltas)):
        if delta.added and delta.removed:
            catalog.replace_view(delta.removed[0])
        elif delta.added:
            catalog.remove_view(delta.added[0].name)
        elif delta.removed:
            catalog.add_view(delta.removed[0])
