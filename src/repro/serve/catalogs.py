"""Named multi-tenant catalog registry for the serve daemon.

``repro batch`` ships the whole view catalog with the process; a
resident daemon instead lets tenants **register** a named catalog once
and then reference it per request (``{"catalog": "tenant-a", ...}``) —
requests stop re-shipping view definitions, and the per-worker warm
:class:`~repro.parallel.pool.PlannerContextPool` keys on the catalog's
content fingerprint, so repeated requests hit warm contexts.

Updates go through :meth:`ViewCatalog.add_view` / ``remove_view`` /
``replace_view``, which emit :class:`~repro.views.view.CatalogDelta`
records and advance the catalog's version and Merkle content root
in place.  Because worker-side context pools fingerprint catalogs
structurally (per-view hashes), a small update delta-upgrades warm
contexts instead of cold-starting them — the ``delta_hits`` counter in
``stats`` is this machinery paying off.

Durability
==========

With a ``state_dir`` the registry is **crash-consistent**: every
mutation is appended to the write-ahead journal
(:mod:`repro.serve.journal`) *before* it is acknowledged, and every
``snapshot_every`` journaled operations the registry checkpoints — a
compacted snapshot (:mod:`repro.serve.snapshot`) replaces the journal.
On construction the registry **recovers**: load the latest valid
snapshot, truncate any torn journal tail with a WARNING, replay the
remaining records, and re-derive each catalog's
``catalog_content_root`` against the root journaled at commit time.  A
catalog that cannot be rebuilt byte-for-byte is **quarantined**:
requests naming it get a structured
:class:`~repro.errors.CatalogCorruptionError` (exit 80) instead of
plans computed from wrong view definitions, until a re-registration
replaces it wholesale.

The commit protocol orders validation → in-memory apply → audit →
journal append (fsync) → acknowledge, rolling the in-memory state back
whenever a later step fails, so the served state never runs ahead of
the journal: a daemon SIGKILLed mid-commit restarts serving exactly
the acknowledged prefix of operations.

With ``audit_fail_on`` set, every registration and update runs the
incremental catalog audit (:mod:`repro.analysis.catalog`) as a
**preflight**: a catalog whose findings reach the configured severity is
rejected with :class:`~repro.errors.AnalysisError` (exit 73 on the
client) *before* it becomes visible to plan requests — a registration
never installs, and an update rolls its deltas back, leaving the
previously accepted content in place.  The same preflight re-runs over
every *recovered* catalog, quarantining (not serving) content that no
longer passes the gate.  One persistent
:class:`~repro.analysis.catalog.CatalogAuditor` per catalog name keeps
the audit incremental: an update re-analyzes only the changed views and
their predicate-index neighbors.

The registry is mutated only from the daemon's event-loop thread;
the lock exists for cross-thread readers (``stats`` snapshots from
tests and benchmarks).
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from ..analysis.diagnostics import Severity
from ..errors import (
    AnalysisError,
    CatalogCorruptionError,
    ParseError,
    ReproError,
    UnknownViewError,
)
from ..views.view import CatalogDelta, ViewCatalog, as_view
from .journal import JOURNAL_NAME, CatalogJournal, scan_journal
from .snapshot import SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.catalog import AuditReport, CatalogAuditor

__all__ = ["CatalogRegistry"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class _Quarantine:
    """Why one named catalog is being refused service."""

    reason: str
    expected_root: str | None = None
    actual_root: str | None = None
    diagnostics: tuple = ()


class CatalogRegistry:
    """Named, versioned view catalogs, one per registering tenant."""

    def __init__(
        self,
        *,
        audit_fail_on: str | None = None,
        state_dir: str | Path | None = None,
        snapshot_every: int = 64,
        journal_fsync: bool = True,
    ) -> None:
        self._catalogs: dict[str, ViewCatalog] = {}
        self._quarantined: dict[str, _Quarantine] = {}
        self._lock = threading.Lock()
        self.registrations = 0
        self.updates = 0
        self.removals = 0
        if audit_fail_on in (None, "never"):
            self._audit_threshold: Severity | None = None
        else:
            self._audit_threshold = Severity.from_name(audit_fail_on)
        #: Per-catalog persistent auditors (incremental across updates).
        self._auditors: dict[str, "CatalogAuditor"] = {}
        #: Last accepted audit report per catalog (for ``stats``).
        self._reports: dict[str, "AuditReport"] = {}
        self.audits = 0
        self.audit_rejections = 0
        # -- durability (all zero / None without a state_dir) ---------------
        self._state_dir = Path(state_dir) if state_dir is not None else None
        self._snapshot_every = max(1, int(snapshot_every))
        self._journal_fsync = journal_fsync
        self._journal: CatalogJournal | None = None
        self._snapshots: SnapshotStore | None = None
        self._ops_since_checkpoint = 0
        self.journaled_ops = 0
        self.compactions = 0
        self.snapshot_failures = 0
        self.snapshots_skipped = 0
        self.recovered_catalogs = 0
        self.replayed_ops = 0
        self.journal_truncations = 0
        self.truncated_bytes = 0
        if self._state_dir is not None:
            self._recover(self._state_dir)

    @property
    def auditing(self) -> bool:
        """Whether registrations/updates run the audit preflight."""
        return self._audit_threshold is not None

    @property
    def durable(self) -> bool:
        """Whether mutations are journaled to a state directory."""
        return self._journal is not None

    # -- recovery -----------------------------------------------------------
    def _recover(self, root: Path) -> None:
        """Rebuild the registry from *root*: snapshot, then journal tail."""
        root.mkdir(parents=True, exist_ok=True)
        self._snapshots = SnapshotStore(root)
        snapshot, skipped = self._snapshots.load_latest()
        for name in skipped:
            logger.warning(
                "state dir %s: snapshot %s is unreadable or failed its "
                "checksum; falling back to the previous generation",
                root,
                name,
            )
        self.snapshots_skipped = len(skipped)
        base_seq = 0
        if snapshot is not None:
            base_seq = int(snapshot["seq"])
            catalogs = snapshot.get("catalogs")
            if isinstance(catalogs, dict):
                for name in sorted(catalogs):
                    entry = catalogs[name]
                    if not isinstance(entry, dict):
                        self._quarantine(
                            name, _Quarantine("malformed snapshot entry")
                        )
                        continue
                    self._rebuild(
                        str(name),
                        entry.get("views", ()),
                        entry.get("root"),
                        source=f"snapshot seq {base_seq}",
                    )
            quarantined = snapshot.get("quarantined")
            if isinstance(quarantined, dict):
                for name, reason in quarantined.items():
                    self._quarantine(str(name), _Quarantine(str(reason)))
        journal_path = root / JOURNAL_NAME
        scan = scan_journal(journal_path, start_seq=base_seq)
        if scan.torn_reason is not None:
            logger.warning(
                "state dir %s: journal tail is torn or corrupt at byte %d "
                "(%s); truncating %d byte(s) — operations past the last "
                "valid record were never acknowledged",
                root,
                scan.truncate_at,
                scan.torn_reason,
                scan.torn_bytes,
            )
            self.journal_truncations += 1
            self.truncated_bytes += scan.torn_bytes
            CatalogJournal(journal_path).truncate(scan.truncate_at)
        for record in scan.records:
            self._replay(record.op)
            self.replayed_ops += 1
        self.recovered_catalogs = len(self._catalogs)
        if self.auditing:
            # Honor --audit-fail-on over recovered content: a catalog
            # that no longer passes the preflight gate must not serve.
            for name in sorted(self._catalogs):
                try:
                    self._audit(name, self._catalogs[name])
                except AnalysisError as exc:
                    self._catalogs.pop(name, None)
                    self._auditors.pop(name, None)
                    self._quarantine(
                        name,
                        _Quarantine(
                            f"recovered content rejected by audit "
                            f"preflight: {exc}",
                            diagnostics=getattr(exc, "diagnostics", ()),
                        ),
                    )
        self._journal = CatalogJournal(
            journal_path,
            fsync=self._journal_fsync,
            start_seq=max(base_seq, scan.last_seq),
        )
        # A long replayed tail means the last checkpoint is far behind;
        # count it so the next mutation can compact promptly.
        self._ops_since_checkpoint = len(scan.records)

    def _rebuild(
        self,
        name: str,
        views: object,
        expected_root: object,
        *,
        source: str,
    ) -> None:
        """Reconstruct one catalog and verify its content root."""
        try:
            if not isinstance(views, (list, tuple)):
                raise ValueError("view texts are not a list")
            catalog = ViewCatalog(str(text) for text in views)
        except Exception as exc:
            self._catalogs.pop(name, None)
            self._quarantine(
                name,
                _Quarantine(f"failed to rebuild from {source}: {exc}"),
            )
            return
        actual = catalog.content_root()
        if expected_root is not None and actual != expected_root:
            self._catalogs.pop(name, None)
            self._quarantine(
                name,
                _Quarantine(
                    f"content root mismatch after {source}",
                    expected_root=str(expected_root),
                    actual_root=actual,
                ),
            )
            return
        self._catalogs[name] = catalog
        self._quarantined.pop(name, None)

    def _replay(self, op: Mapping) -> None:
        """Apply one journaled operation during recovery."""
        kind = op.get("op")
        name = str(op.get("name", ""))
        if kind == "remove":
            self._catalogs.pop(name, None)
            self._quarantined.pop(name, None)
            return
        if kind == "register":
            self._rebuild(
                name,
                op.get("views", ()),
                op.get("root"),
                source=f"journal replay (seq {op.get('seq')})",
            )
            return
        if kind == "update":
            if name in self._quarantined:
                return  # already refusing service; nothing to update
            try:
                catalog = self._catalogs[name]
                for view_name in op.get("remove", ()):
                    catalog.remove_view(str(view_name))
                for text in op.get("replace", ()):
                    catalog.replace_view(str(text))
                for text in op.get("add", ()):
                    catalog.add_view(str(text))
            except Exception as exc:
                self._catalogs.pop(name, None)
                self._quarantine(
                    name,
                    _Quarantine(
                        f"journal replay failed at seq {op.get('seq')}: "
                        f"{exc}"
                    ),
                )
                return
            expected = op.get("root")
            actual = catalog.content_root()
            if expected is not None and actual != expected:
                self._catalogs.pop(name, None)
                self._quarantine(
                    name,
                    _Quarantine(
                        f"content root mismatch after journal replay "
                        f"(seq {op.get('seq')})",
                        expected_root=str(expected),
                        actual_root=actual,
                    ),
                )
            return
        # An unknown operation kind is a future-format record; the
        # catalog it names can no longer be trusted to be current.
        self._quarantine(
            name, _Quarantine(f"unknown journaled operation {kind!r}")
        )

    def _quarantine(self, name: str, record: _Quarantine) -> None:
        logger.warning("catalog %r quarantined: %s", name, record.reason)
        self._quarantined[name] = record

    def _corruption_error(self, name: str) -> CatalogCorruptionError:
        record = self._quarantined[name]
        return CatalogCorruptionError(
            f"catalog {name!r} is quarantined: {record.reason}; "
            "re-register it to restore service",
            catalog=name,
            expected_root=record.expected_root,
            actual_root=record.actual_root,
            diagnostics=record.diagnostics,
        )

    # -- journal / checkpoint ----------------------------------------------
    def _journal_op(self, op: dict) -> None:
        """Durably record *op*; the caller applies it only on success."""
        if self._journal is None:
            return
        try:
            self._journal.append(op)
        except ReproError:
            raise
        except Exception as exc:
            raise CatalogCorruptionError(
                f"write-ahead journal append failed: {exc}"
            ) from exc
        self.journaled_ops += 1
        self._ops_since_checkpoint += 1

    def _maybe_checkpoint(self) -> None:
        if (
            self._journal is not None
            and self._ops_since_checkpoint >= self._snapshot_every
        ):
            self.checkpoint()

    def checkpoint(self) -> dict | None:
        """Write a compacted snapshot and empty the journal.

        Failure is non-fatal by design: the snapshot write is counted
        and WARNed, and the journal is **kept** — recovery still works
        from the previous generation plus the full journal.  The
        journal is emptied only after the new snapshot is durable.
        """
        if self._journal is None or self._snapshots is None:
            return None
        with self._lock:
            catalogs = dict(self._catalogs)
            quarantined = dict(self._quarantined)
        seq = self._journal.last_seq
        payload = {
            "seq": seq,
            "catalogs": {
                name: {
                    "views": [str(view) for view in catalog],
                    "root": catalog.content_root(),
                }
                for name, catalog in sorted(catalogs.items())
            },
            "quarantined": {
                name: record.reason
                for name, record in sorted(quarantined.items())
            },
        }
        try:
            self._snapshots.write(seq, payload)
        except Exception as exc:
            self.snapshot_failures += 1
            logger.warning(
                "snapshot at seq %d failed (%s); journal retained", seq, exc
            )
            return None
        self._journal.reset(start_seq=seq)
        self.compactions += 1
        self._ops_since_checkpoint = 0
        return {"seq": seq, "catalogs": len(catalogs)}

    def durability_stats(self) -> dict | None:
        """Journal/snapshot/recovery counters (``None`` when in-memory)."""
        if self._journal is None or self._snapshots is None:
            return None
        with self._lock:
            quarantined = len(self._quarantined)
        return {
            "state_dir": str(self._state_dir),
            "last_seq": self._journal.last_seq,
            "journaled_ops": self.journaled_ops,
            "journal_bytes": self._journal.bytes_written,
            "fsyncs": self._journal.fsyncs,
            "snapshots_written": self._snapshots.written,
            "snapshots_skipped": self.snapshots_skipped,
            "snapshot_failures": self.snapshot_failures,
            "compactions": self.compactions,
            "recovered_catalogs": self.recovered_catalogs,
            "replayed_ops": self.replayed_ops,
            "journal_truncations": self.journal_truncations,
            "truncated_bytes": self.truncated_bytes,
            "quarantined": quarantined,
        }

    def close(self) -> None:
        """Release the journal file handle (tests, daemon shutdown)."""
        if self._journal is not None:
            self._journal.close()

    # -- audit --------------------------------------------------------------
    def _audit(self, name: str, catalog: ViewCatalog) -> "AuditReport":
        """Audit *catalog* with the persistent per-name auditor.

        Raises :class:`~repro.errors.AnalysisError` when findings reach
        the configured severity; the caller must not install/keep the
        offending content.  On success the report is retained for
        ``stats``.
        """
        from ..analysis.catalog import CatalogAuditor

        assert self._audit_threshold is not None
        auditor = self._auditors.get(name)
        if auditor is None:
            auditor = self._auditors[name] = CatalogAuditor()
        report = auditor.audit(catalog)
        self.audits += 1
        offending = report.at_least(self._audit_threshold)
        if offending:
            self.audit_rejections += 1
            raise AnalysisError(
                f"catalog {name!r} rejected by audit preflight: "
                f"{len(offending)} diagnostic(s) at or above "
                f"{self._audit_threshold.name.lower()} severity",
                diagnostics=tuple(offending),
            )
        self._reports[name] = report
        return report

    # -- lookup -------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._catalogs

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._catalogs))

    def quarantined_names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._quarantined))

    def get(self, name: str) -> ViewCatalog:
        """The catalog registered under *name* (taxonomy error if none)."""
        with self._lock:
            if name in self._quarantined:
                raise self._corruption_error(name)
            try:
                return self._catalogs[name]
            except KeyError:
                raise UnknownViewError(
                    f"unknown catalog {name!r}; register it first with a "
                    '{"type": "catalog", "action": "register"} message'
                ) from None

    def resolve(
        self, name: str | None, default: ViewCatalog | None
    ) -> ViewCatalog:
        """The catalog a plan request should run against."""
        if name is not None:
            return self.get(str(name))
        if default is None:
            raise UnknownViewError(
                "request names no catalog and the daemon has no default "
                "(--views); register a catalog or pass \"catalog\""
            )
        return default

    # -- mutation -----------------------------------------------------------
    def register(self, name: str, views: Iterable[str]) -> dict:
        """Create (or wholly replace) the catalog under *name*.

        With auditing enabled the catalog is audited *before* it is
        installed: a rejected registration leaves any previously
        registered content untouched.  A durable registry journals the
        accepted registration before installing it; re-registering a
        quarantined name clears its quarantine.
        """
        if not name:
            raise ParseError('catalog "name" must be a non-empty string')
        texts = [str(text) for text in views]
        catalog = ViewCatalog(texts)
        content_root = catalog.content_root()
        ack = {
            "catalog": name,
            "action": "register",
            "views": len(catalog),
            "version": catalog.version,
            "content_root": content_root,
        }
        if self.auditing:
            report = self._audit(name, catalog)
            ack["audit"] = _audit_ack(report)
        # The journal carries the texts as received — they parse to the
        # same views (that's what the journaled root verifies on replay),
        # and skipping re-serialization keeps the append overhead low.
        self._journal_op(
            {
                "op": "register",
                "name": name,
                "views": texts,
                "root": content_root,
            }
        )
        with self._lock:
            ack["replaced"] = name in self._catalogs
            self._catalogs[name] = catalog
            self._quarantined.pop(name, None)
            self.registrations += 1
        self._maybe_checkpoint()
        return ack

    def update(
        self,
        name: str,
        *,
        add: Iterable[str] = (),
        remove: Iterable[str] = (),
        replace: Iterable[str] = (),
    ) -> dict:
        """Apply incremental deltas to a registered catalog.

        The catalog *name* is validated first — an unknown (or
        quarantined) name reports its registry-level error even when
        the view payload is also malformed.  View texts are then parsed
        before anything mutates, so a parse error leaves the catalog
        untouched.  Removals run first (so a rename expressed as
        remove+add is order-independent), then replacements, then
        additions.  Every mutation's
        :class:`~repro.views.view.CatalogDelta` is echoed in the
        acknowledgement so the client can audit exactly what changed
        and at which version.  A durable registry journals the update
        (post-audit) before acknowledging; any rejected or failed step
        rolls the applied deltas back.
        """
        catalog = self.get(name)
        # Parse every incoming text before the first mutation: a bad
        # third view must not leave the first two half-applied.
        remove_names = [str(view_name) for view_name in remove]
        replace_texts = [str(text) for text in replace]
        add_texts = [str(text) for text in add]
        replace_views = [as_view(text) for text in replace_texts]
        add_views = [as_view(text) for text in add_texts]
        deltas: list[CatalogDelta] = []
        try:
            for view_name in remove_names:
                deltas.append(catalog.remove_view(view_name))
            for view in replace_views:
                deltas.append(catalog.replace_view(view))
            for view in add_views:
                deltas.append(catalog.add_view(view))
        except Exception:
            _roll_back(catalog, deltas)
            raise
        content_root = catalog.content_root()
        ack = {
            "catalog": name,
            "action": "update",
            "deltas": [str(delta) for delta in deltas],
            "views": len(catalog),
            "version": catalog.version,
            "content_root": content_root,
        }
        if self.auditing:
            try:
                report = self._audit(name, catalog)
            except AnalysisError:
                _roll_back(catalog, deltas)
                raise
            ack["audit"] = _audit_ack(report)
        try:
            self._journal_op(
                {
                    "op": "update",
                    "name": name,
                    "remove": remove_names,
                    "replace": replace_texts,
                    "add": add_texts,
                    "root": content_root,
                }
            )
        except Exception:
            # Never acknowledge (or serve) state the journal does not
            # hold: the in-memory apply is undone before re-raising.
            _roll_back(catalog, deltas)
            raise
        with self._lock:
            self.updates += 1
        self._maybe_checkpoint()
        return ack

    def remove(self, name: str) -> dict:
        """Drop the catalog under *name* (quarantined names included).

        Removing a quarantined catalog is the operator's "give up on
        this content" escape hatch — the quarantine marker is dropped
        along with the name, and the removal is journaled so it
        survives restarts.
        """
        with self._lock:
            known = name in self._catalogs or name in self._quarantined
            was_quarantined = name in self._quarantined
        if not known:
            raise UnknownViewError(
                f"unknown catalog {name!r}; nothing to remove"
            )
        self._journal_op({"op": "remove", "name": name})
        with self._lock:
            self._catalogs.pop(name, None)
            self._quarantined.pop(name, None)
            self.removals += 1
        self._auditors.pop(name, None)
        self._reports.pop(name, None)
        ack = {
            "catalog": name,
            "action": "remove",
            "removed": True,
            "was_quarantined": was_quarantined,
        }
        self._maybe_checkpoint()
        return ack

    def stats(self) -> Mapping[str, dict]:
        """Per-catalog introspection for the ``stats`` message."""
        with self._lock:
            catalogs = dict(self._catalogs)
            reports = dict(self._reports)
            quarantined = dict(self._quarantined)
        snapshot = {}
        for name, catalog in sorted(catalogs.items()):
            entry = {
                "views": len(catalog),
                "version": catalog.version,
                "content_root": catalog.content_root(),
            }
            report = reports.get(name)
            if report is not None:
                entry["diagnostics"] = {
                    "error": len(report.errors),
                    "warning": len(report.warnings),
                    "info": len(report.infos),
                }
            snapshot[name] = entry
        for name, record in sorted(quarantined.items()):
            snapshot[name] = {
                "quarantined": True,
                "reason": record.reason,
            }
        return snapshot


def _audit_ack(report: "AuditReport") -> dict:
    """The audit summary attached to a register/update acknowledgement."""
    return {
        "diagnostics": report.counts(),
        "views_analyzed": report.views_analyzed,
        "views_reused": report.views_reused,
    }


def _roll_back(catalog: ViewCatalog, deltas: Iterable[CatalogDelta]) -> None:
    """Undo *deltas* (newest first) after a rejected or failed commit.

    Inverses restore the exact pre-update *content* (the Merkle root
    matches) — a re-added removed view returns at the end of the
    registration order, which no plan result and no audit fingerprint
    observes, though pair-rule attribution ("older"/"newer") can shift.
    """
    for delta in reversed(list(deltas)):
        if delta.added and delta.removed:
            catalog.replace_view(delta.removed[0])
        elif delta.added:
            catalog.remove_view(delta.added[0].name)
        elif delta.removed:
            catalog.add_view(delta.removed[0])
