"""Named multi-tenant catalog registry for the serve daemon.

``repro batch`` ships the whole view catalog with the process; a
resident daemon instead lets tenants **register** a named catalog once
and then reference it per request (``{"catalog": "tenant-a", ...}``) —
requests stop re-shipping view definitions, and the per-worker warm
:class:`~repro.parallel.pool.PlannerContextPool` keys on the catalog's
content fingerprint, so repeated requests hit warm contexts.

Updates go through :meth:`ViewCatalog.add_view` / ``remove_view`` /
``replace_view``, which emit :class:`~repro.views.view.CatalogDelta`
records and advance the catalog's version and Merkle content root
in place.  Because worker-side context pools fingerprint catalogs
structurally (per-view hashes), a small update delta-upgrades warm
contexts instead of cold-starting them — the ``delta_hits`` counter in
``stats`` is this machinery paying off.

The registry is mutated only from the daemon's event-loop thread;
the lock exists for cross-thread readers (``stats`` snapshots from
tests and benchmarks).
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from ..errors import ParseError, UnknownViewError
from ..views.view import ViewCatalog

__all__ = ["CatalogRegistry"]


class CatalogRegistry:
    """Named, versioned view catalogs, one per registering tenant."""

    def __init__(self) -> None:
        self._catalogs: dict[str, ViewCatalog] = {}
        self._lock = threading.Lock()
        self.registrations = 0
        self.updates = 0

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._catalogs

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._catalogs))

    def get(self, name: str) -> ViewCatalog:
        """The catalog registered under *name* (taxonomy error if none)."""
        with self._lock:
            try:
                return self._catalogs[name]
            except KeyError:
                raise UnknownViewError(
                    f"unknown catalog {name!r}; register it first with a "
                    '{"type": "catalog", "action": "register"} message'
                ) from None

    def resolve(
        self, name: str | None, default: ViewCatalog | None
    ) -> ViewCatalog:
        """The catalog a plan request should run against."""
        if name is not None:
            return self.get(str(name))
        if default is None:
            raise UnknownViewError(
                "request names no catalog and the daemon has no default "
                "(--views); register a catalog or pass \"catalog\""
            )
        return default

    def register(self, name: str, views: Iterable[str]) -> dict:
        """Create (or wholly replace) the catalog under *name*."""
        if not name:
            raise ParseError('catalog "name" must be a non-empty string')
        catalog = ViewCatalog(str(text) for text in views)
        with self._lock:
            replaced = name in self._catalogs
            self._catalogs[name] = catalog
            self.registrations += 1
        return {
            "catalog": name,
            "action": "register",
            "replaced": replaced,
            "views": len(catalog),
            "version": catalog.version,
            "content_root": catalog.content_root(),
        }

    def update(
        self,
        name: str,
        *,
        add: Iterable[str] = (),
        remove: Iterable[str] = (),
        replace: Iterable[str] = (),
    ) -> dict:
        """Apply incremental deltas to a registered catalog.

        Removals run first (so a rename expressed as remove+add is
        order-independent), then replacements, then additions.  Every
        mutation's :class:`~repro.views.view.CatalogDelta` is echoed in
        the acknowledgement so the client can audit exactly what
        changed and at which version.
        """
        catalog = self.get(name)
        deltas = []
        for view_name in remove:
            deltas.append(catalog.remove_view(str(view_name)))
        for text in replace:
            deltas.append(catalog.replace_view(str(text)))
        for text in add:
            deltas.append(catalog.add_view(str(text)))
        with self._lock:
            self.updates += 1
        return {
            "catalog": name,
            "action": "update",
            "deltas": [str(delta) for delta in deltas],
            "views": len(catalog),
            "version": catalog.version,
            "content_root": catalog.content_root(),
        }

    def stats(self) -> Mapping[str, dict]:
        """Per-catalog introspection for the ``stats`` message."""
        with self._lock:
            catalogs = dict(self._catalogs)
        return {
            name: {
                "views": len(catalog),
                "version": catalog.version,
                "content_root": catalog.content_root(),
            }
            for name, catalog in sorted(catalogs.items())
        }
