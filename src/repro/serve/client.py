"""A small blocking client for the serve daemon's NDJSON protocol.

Used by ``repro serve send``, the latency benchmark, and the CI smoke
driver.  One client holds one connection; :meth:`request` is strictly
send-one-read-one, so responses correlate trivially.  For concurrent
load, open one client per in-flight request (connections are cheap
next to planning) — the daemon interleaves responses by completion
order within a connection, which a lockstep client never observes.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..errors import ReproError
from .protocol import decode_frame, encode_frame, error_from_payload

__all__ = ["RetryBackoff", "ServeClient"]


@dataclass(frozen=True)
class RetryBackoff:
    """The backoff schedule ``repro serve send --retry-on`` follows.

    The daemon's backpressure errors (shed: exit 78, draining: 79)
    carry a ``retry_after`` hint; when present it **is** the delay —
    the server knows its own refill rate and drain deadline better than
    any client-side guess.  Without a hint the schedule is capped
    exponential: ``base * 2**attempt``, clamped to ``max_delay``.
    """

    base: float = 0.05
    max_delay: float = 5.0

    def delay(self, attempt: int, retry_after: float | None = None) -> float:
        """Seconds to wait before retry *attempt* (0-based)."""
        if retry_after is not None and retry_after >= 0:
            return min(float(retry_after), self.max_delay)
        return min(self.base * (2.0 ** attempt), self.max_delay)


class ServeClient:
    """Blocking NDJSON client over TCP or a Unix socket."""

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        *,
        unix_socket: str | None = None,
        timeout: float | None = 30.0,
    ) -> None:
        if unix_socket is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(unix_socket)
        else:
            if host is None or port is None:
                raise ValueError("host and port (or unix_socket) required")
            sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")

    # -- plumbing -----------------------------------------------------------
    def send(self, payload: Mapping[str, Any]) -> None:
        self._file.write(encode_frame(payload))
        self._file.flush()

    def recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return decode_frame(line)

    def request(self, payload: Mapping[str, Any]) -> dict:
        """Send one frame, read one response."""
        self.send(payload)
        return self.recv()

    def request_with_retry(
        self,
        payload: Mapping[str, Any],
        *,
        retry_on: Iterable[int] = (78, 79),
        max_retries: int = 5,
        backoff: RetryBackoff | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> tuple[dict, int]:
        """Like :meth:`request`, riding out sheds and drains.

        Re-sends *payload* while the daemon answers with an error whose
        ``exit_code`` is in *retry_on* (by default 78 = load shed and
        79 = draining), waiting :meth:`RetryBackoff.delay` between
        attempts and honoring the server's ``retry_after`` hint when
        one rides on the error.  Returns ``(response, retries)`` —
        the final response (which may still be an error, once
        *max_retries* is spent) and how many retries were taken.
        ``sleep`` is injectable so tests can pin the schedule without
        waiting it out.
        """
        schedule = backoff if backoff is not None else RetryBackoff()
        codes = frozenset(int(code) for code in retry_on)
        retries = 0
        while True:
            response = self.request(payload)
            error = response.get("error")
            if (
                response.get("status") != "error"
                or not isinstance(error, Mapping)
                or error.get("exit_code") not in codes
                or retries >= max_retries
            ):
                return response, retries
            retry_after = error.get("retry_after")
            try:
                hint = float(retry_after) if retry_after is not None else None
            except (TypeError, ValueError):
                hint = None
            sleep(schedule.delay(retries, hint))
            retries += 1

    def request_many(
        self, payloads: Iterable[Mapping[str, Any]]
    ) -> list[dict]:
        """Pipeline several frames, collect as many responses.

        Responses come back in *completion* order; callers correlate by
        ``id``.
        """
        count = 0
        for payload in payloads:
            self.send(payload)
            count += 1
        return [self.recv() for _ in range(count)]

    # -- conveniences -------------------------------------------------------
    def plan(self, query: str, **fields: Any) -> dict:
        return self.request({"query": query, **fields})

    def healthz(self) -> dict:
        return self.request({"type": "healthz"})

    def stats(self) -> dict:
        return self.request({"type": "stats"})

    def drain(self) -> dict:
        return self.request({"type": "drain"})

    def register_catalog(self, name: str, views: Iterable[str]) -> dict:
        return self.request(
            {
                "type": "catalog",
                "action": "register",
                "name": name,
                "views": list(views),
            }
        )

    def update_catalog(self, name: str, **deltas: Iterable[str]) -> dict:
        return self.request(
            {
                "type": "catalog",
                "action": "update",
                "name": name,
                **{key: list(value) for key, value in deltas.items()},
            }
        )

    def remove_catalog(self, name: str) -> dict:
        return self.request(
            {"type": "catalog", "action": "remove", "name": name}
        )

    @staticmethod
    def raise_for_response(response: Mapping[str, Any]) -> None:
        """Re-raise a daemon-side error response as its taxonomy error."""
        if response.get("status") == "error":
            error = response.get("error")
            if isinstance(error, Mapping):
                raise error_from_payload(error)
            raise ReproError(str(error))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
