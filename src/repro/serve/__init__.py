"""The resident planning daemon behind ``repro serve``.

This package promotes the one-shot ``repro batch`` path into a
long-lived multi-tenant service: an asyncio front door speaking
newline-delimited JSON over a TCP or Unix socket, streaming plan
requests into a :class:`~repro.parallel.SupervisedWorkerPool` whose
warm planner-context pools amortize catalog work across requests.

Robustness is the organizing principle (see the "Degradation ladder"
section of ``docs/robustness.md``):

* bounded admission with explicit load-shedding
  (:class:`~repro.errors.OverloadError`, exit code 78, with a
  ``Retry-After``-style hint) and per-tenant token-bucket rate limits;
* deadline propagation — queue wait is charged against the request's
  budget before a worker ever sees it;
* heartbeat-supervised workers restarted on crash/hang with
  breaker-scoreboard merge, recycled on request count or RSS;
* named catalog registration (``catalog`` messages) reusing
  :class:`~repro.views.view.CatalogDelta` fingerprint upgrades;
* graceful drain on SIGTERM (:class:`~repro.errors.ShuttingDownError`,
  exit code 79): stop admitting, settle in-flight work within a drain
  deadline, flush the plan cache, checkpoint the catalog state, exit 0;
* durable catalog state (``--state-dir``): a checksummed write-ahead
  journal (:class:`~repro.serve.journal.CatalogJournal`) plus compacted
  snapshots (:class:`~repro.serve.snapshot.SnapshotStore`) recover
  every named catalog across restarts, content-root-verified, with
  corrupt content quarantined
  (:class:`~repro.errors.CatalogCorruptionError`, exit code 80);
* ``healthz``/``stats`` introspection messages.
"""

from .admission import AdmissionController, AdmissionPolicy, TokenBucket
from .catalogs import CatalogRegistry
from .client import RetryBackoff, ServeClient
from .daemon import PlanningDaemon, ServeConfig
from .journal import CatalogJournal, scan_journal
from .protocol import (
    decode_frame,
    encode_frame,
    error_from_payload,
    error_response,
)
from .snapshot import SnapshotStore

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "CatalogJournal",
    "CatalogRegistry",
    "PlanningDaemon",
    "RetryBackoff",
    "ServeClient",
    "ServeConfig",
    "SnapshotStore",
    "TokenBucket",
    "decode_frame",
    "encode_frame",
    "error_from_payload",
    "error_response",
    "scan_journal",
]
