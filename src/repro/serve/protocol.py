"""The serve daemon's newline-delimited JSON wire protocol.

Every frame is one JSON object on one line.  Requests are discriminated
by an optional ``"type"`` field; a frame without one is a **plan**
request in exactly the ``repro batch`` schema (``query``, optional
``id``/``views``/``timeout``/``options``) plus two serve-only fields:
``catalog`` (a registered catalog name) and ``tenant`` (the rate-limit
bucket the request draws from).  Control frames::

    {"type": "catalog", "action": "register", "name": "t1", "views": [...]}
    {"type": "catalog", "action": "update", "name": "t1",
     "add": [...], "remove": [...], "replace": [...]}
    {"type": "catalog", "action": "remove", "name": "t1"}
    {"type": "healthz"}
    {"type": "stats"}
    {"type": "drain"}

Responses echo the request ``id`` (plan outcomes use the batch outcome
schema verbatim).  Failures are ``{"id": ..., "status": "error",
"error": {...}}`` where the inner object is the taxonomy's
:func:`~repro.errors.structured_error` payload — same class name, exit
code, message, and ``retry_after`` hint as the CLI's stderr line, so a
client can reconstruct the exception (:func:`error_from_payload`) and
exit with the same status a local run would have.

Unlike batch intake — where a malformed line is a producer bug that
fails the whole run — a resident daemon converts *every* per-request
failure into an error response on the same connection and keeps
serving; one tenant's garbage must not take down another's traffic.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from .. import errors as _errors
from ..errors import ParseError, ReproError

__all__ = [
    "decode_frame",
    "encode_frame",
    "error_from_payload",
    "error_payload",
    "error_response",
]

#: Taxonomy class name -> class, for client-side reconstruction.
_ERROR_CLASSES: dict[str, type] = {
    name: getattr(_errors, name)
    for name in _errors.__all__
    if isinstance(getattr(_errors, name), type)
    and issubclass(getattr(_errors, name), ReproError)
}


def decode_frame(raw: bytes | str) -> dict:
    """One wire line -> a message object (:class:`ParseError` on junk)."""
    if isinstance(raw, bytes):
        try:
            raw = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ParseError(f"frame is not valid UTF-8: {exc}") from None
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ParseError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ParseError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """A response object -> one newline-terminated wire line."""
    return (json.dumps(payload, default=str) + "\n").encode("utf-8")


def error_payload(error: BaseException) -> dict:
    """The structured-error object embedded in an error response.

    Delegates to :func:`~repro.errors.structured_error` so the wire
    shape and the CLI's stderr line can never drift apart.
    """
    return json.loads(_errors.structured_error(error))


def error_response(request_id: str | None, error: BaseException) -> dict:
    """The full error response frame for one failed request."""
    return {
        "id": request_id,
        "status": "error",
        "error": error_payload(error),
    }


def error_from_payload(payload: Mapping[str, Any]) -> ReproError:
    """Reconstruct a taxonomy error from a structured-error object.

    Used by the ``repro serve send`` client to re-raise a daemon-side
    failure locally, preserving the exit-code contract of the serial
    CLI.  Unknown class names degrade to a plain :class:`ReproError`
    carrying the payload's exit code on the instance.
    """
    name = str(payload.get("error", "ReproError"))
    message = str(payload.get("message", ""))
    cls = _ERROR_CLASSES.get(name)
    error: ReproError
    if cls is None:
        error = ReproError(message)
        try:
            error.exit_code = int(payload.get("exit_code", 70))
        except (TypeError, ValueError):
            pass
        return error
    try:
        error = cls(message)
    except TypeError:  # pragma: no cover - all taxonomy ctors take a msg
        error = ReproError(message)
        error.exit_code = cls.exit_code
        return error
    retry_after = payload.get("retry_after")
    if retry_after is not None and hasattr(error, "retry_after"):
        try:
            error.retry_after = float(retry_after)
        except (TypeError, ValueError):
            pass
    # AnalysisError rejections ship their offending diagnostics; keep
    # them (as the wire's plain JSON objects) on the reconstruction so
    # clients can report *which* findings failed the audit gate.
    diagnostics = payload.get("diagnostics")
    if isinstance(diagnostics, list) and hasattr(error, "diagnostics"):
        error.diagnostics = tuple(diagnostics)
    return error
