"""Admission control for the serve daemon: shed early, shed cheaply.

The whole point of admission control is to reject work *before* any
planning cost is spent, with a structured answer that tells the client
what to do next.  Three gates run in order:

1. **Draining** — once a graceful drain has begun the daemon admits
   nothing; clients get :class:`~repro.errors.ShuttingDownError`
   (exit code 79) with a hint to retry against a replacement instance.
2. **Bounded queue** — when the intake queue is at capacity, admitting
   more would only convert overload into latency for everyone;
   :class:`~repro.errors.OverloadError` (``reason="queue_full"``)
   carries a ``retry_after`` estimated from the recent service-time
   EWMA times the backlog ahead of the would-be request.  This gate
   runs *before* the token bucket so a shed request never debits the
   tenant's budget — a request that was never admitted must not make
   the tenant rate-limited later.
3. **Per-tenant token bucket** — each tenant draws from its own
   :class:`TokenBucket`; an empty bucket sheds with
   :class:`~repro.errors.OverloadError` (``reason="rate_limited"``)
   and a ``retry_after`` computed from the refill rate — the exact
   wait until a token exists, not a guess.

Only after all three gates pass does the ``serve_admission`` injection
point fire (the chaos suite's hook for intake stalls/crashes) and the
request count as admitted.  All gates are deterministic given the
injected clock, so shed behaviour is unit-testable without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..errors import OverloadError, ShuttingDownError
from ..testing.faults import fire

__all__ = ["AdmissionController", "AdmissionPolicy", "TokenBucket"]


class TokenBucket:
    """A deterministic token bucket (tokens refill at ``rate`` per second)."""

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
        initial: float | None = None,
    ) -> None:
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self._clock = clock
        self._tokens = self.burst if initial is None else float(initial)
        self._stamp = clock()

    def try_acquire(self, cost: float = 1.0) -> float | None:
        """Take *cost* tokens; ``None`` on success, else seconds to wait.

        The returned wait is exact for a constant refill rate — after
        that many seconds the bucket is guaranteed to hold *cost*
        tokens (absent other consumers).  A zero/negative rate never
        refills; the wait degrades to a long constant.
        """
        now = self._clock()
        if self.rate > 0:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
        self._stamp = now
        if self._tokens >= cost:
            self._tokens -= cost
            return None
        if self.rate <= 0:
            return 60.0
        return (cost - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass(frozen=True)
class AdmissionPolicy:
    """Intake limits for the daemon."""

    #: Bounded intake queue; at this depth new plan requests shed.
    max_queue_depth: int = 64
    #: Default per-tenant request rate (requests/second); ``None`` = no
    #: rate limiting.
    tenant_rate: float | None = None
    #: Token-bucket burst size per tenant.
    tenant_burst: float = 8.0
    #: Per-tenant rate overrides (a rate of 0 blocks the tenant).
    tenant_rates: Mapping[str, float] = field(default_factory=dict)
    #: The ``retry_after`` hint attached to draining rejections.
    drain_retry_after: float = 5.0


class AdmissionController:
    """The shed-or-admit decision, plus shed accounting."""

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.draining = False
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_rate_limited = 0
        self.shed_draining = 0
        #: EWMA of recent per-request service seconds (retry hints).
        self._service_ewma: float | None = None

    # -- service-time feedback ----------------------------------------------
    def record_service_time(self, seconds: float) -> None:
        """Fold one completed request's wall time into the EWMA."""
        if seconds < 0:
            return
        if self._service_ewma is None:
            self._service_ewma = seconds
        else:
            self._service_ewma = 0.8 * self._service_ewma + 0.2 * seconds

    def queue_retry_after(self, queue_depth: int) -> float:
        """Seconds until a full queue has plausibly made progress."""
        per_request = self._service_ewma if self._service_ewma else 0.25
        return round(max(0.05, per_request * max(1, queue_depth) / 4), 3)

    # -- the decision --------------------------------------------------------
    def _bucket_for(self, tenant: str) -> TokenBucket | None:
        rate = self.policy.tenant_rates.get(tenant, self.policy.tenant_rate)
        if rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None or bucket.rate != float(rate):
            # A zero/negative rate blocks the tenant outright: the bucket
            # starts empty and never refills.
            bucket = TokenBucket(
                float(rate),
                self.policy.tenant_burst,
                clock=self._clock,
                initial=0.0 if float(rate) <= 0 else None,
            )
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, *, tenant: str = "default", queue_depth: int = 0) -> None:
        """Admit one plan request or raise the structured shed error."""
        if self.draining:
            self.shed_draining += 1
            raise ShuttingDownError(
                "daemon is draining and no longer admits requests; "
                "retry against a replacement instance",
                retry_after=self.policy.drain_retry_after,
            )
        if queue_depth >= self.policy.max_queue_depth:
            self.shed_queue_full += 1
            raise OverloadError(
                f"intake queue is full ({queue_depth}/"
                f"{self.policy.max_queue_depth}); request shed",
                retry_after=self.queue_retry_after(queue_depth),
                reason="queue_full",
                queue_depth=queue_depth,
            )
        bucket = self._bucket_for(tenant)
        if bucket is not None:
            wait = bucket.try_acquire()
            if wait is not None:
                self.shed_rate_limited += 1
                raise OverloadError(
                    f"tenant {tenant!r} exceeded its request rate",
                    retry_after=round(max(wait, 0.001), 3),
                    reason="rate_limited",
                    queue_depth=queue_depth,
                )
        fire("serve_admission")
        self.admitted += 1

    def stats(self) -> dict:
        """JSON-ready shed accounting for the ``stats`` message."""
        return {
            "admitted": self.admitted,
            "shed": {
                "queue_full": self.shed_queue_full,
                "rate_limited": self.shed_rate_limited,
                "draining": self.shed_draining,
            },
            "service_ewma_seconds": (
                round(self._service_ewma, 6)
                if self._service_ewma is not None
                else None
            ),
        }
