"""Append-only, checksummed write-ahead journal of catalog operations.

Every mutation of a durable :class:`~repro.serve.catalogs.CatalogRegistry`
— register, update (as the texts behind its
:class:`~repro.views.view.CatalogDelta`), remove — is journaled **before**
it is acknowledged, so a daemon killed mid-commit restarts serving
exactly the committed prefix of operations.

Record format
=============

One record per line, length-prefixed and checksummed::

    <payload-length> <sha256-of-payload> <payload-json>\\n

``payload-length`` is the ASCII decimal byte length of the JSON payload;
the sha256 is over exactly those payload bytes.  The payload itself is
compact sorted-keys JSON carrying a **monotone sequence number**
(``seq``), the operation (``op``/``name``/op fields), and — for
content-bearing operations — the catalog's post-operation
``catalog_content_root``, which recovery re-derives and verifies.

Crash consistency
=================

A SIGKILL can tear the last record (partial line) or, with fsync
disabled by a fault, leave a record whose bytes never reached the disk.
:func:`scan_journal` therefore validates each record in order — framing,
length, checksum, JSON shape, and sequence monotonicity — and treats the
**first** invalid record as the end of the journal: everything from its
start offset is a torn tail, reported (and truncated by the registry)
with a WARNING, never a crash.  Because records are validated
prefix-wise, a valid record can never be resurrected *after* a torn one.

The ``journal_append`` fault point fires before the framed bytes are
written; ``journal_fsync`` fires after the write but before fsync — a
kill at the first point loses the whole record, a kill at the second
leaves durability to the page cache (the record may or may not survive,
but never partially-framed as far as the checksum is concerned).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..testing.faults import fire

__all__ = [
    "CatalogJournal",
    "JournalRecord",
    "JournalScan",
    "scan_journal",
]

#: The journal file name inside a ``--state-dir``.
JOURNAL_NAME = "catalog.journal"


def _frame(seq: int, op: Mapping[str, Any]) -> bytes:
    """One wire record: ``<len> <sha256> <payload-json>\\n``."""
    payload = json.dumps(
        {"seq": seq, **op}, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()
    return b"%d %s %s\n" % (len(payload), digest.encode("ascii"), payload)


@dataclass(frozen=True)
class JournalRecord:
    """One validated journal record.

    ``end_offset`` is the byte offset just past this record's newline —
    truncating the file there keeps exactly the prefix ending at this
    record, which is what the crash-boundary property tests sweep.
    """

    seq: int
    op: dict
    end_offset: int


@dataclass(frozen=True)
class JournalScan:
    """The result of validating a journal file prefix-wise.

    ``truncate_at`` is the offset of the first invalid byte (== file
    size when the whole journal is valid); ``torn_bytes`` counts the
    invalid tail and ``torn_reason`` says why validation stopped.
    """

    records: tuple[JournalRecord, ...]
    truncate_at: int
    torn_bytes: int
    torn_reason: str | None

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


def scan_journal(path: Path, *, start_seq: int = 0) -> JournalScan:
    """Validate *path* record by record; stop at the first bad one.

    ``start_seq`` is the sequence number the journal is expected to
    continue from (the snapshot's, for a compacted state dir); the
    first record must carry ``start_seq + 1`` and each record must
    advance the sequence by exactly one — a gap means lost records and
    invalidates the tail from that point.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return JournalScan((), 0, 0, None)
    records: list[JournalRecord] = []
    pos = 0
    seq = start_seq
    reason: str | None = None
    while pos < len(data):
        newline = data.find(b"\n", pos)
        if newline == -1:
            reason = "torn record (no trailing newline)"
            break
        line = data[pos:newline]
        first = line.find(b" ")
        second = line.find(b" ", first + 1)
        if first <= 0 or second <= first:
            reason = "malformed record framing"
            break
        try:
            length = int(line[:first])
        except ValueError:
            reason = "malformed length prefix"
            break
        digest = line[first + 1 : second]
        payload = line[second + 1 :]
        if len(payload) != length:
            reason = (
                f"length mismatch (framed {length}, got {len(payload)} bytes)"
            )
            break
        if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
            reason = "checksum mismatch"
            break
        try:
            op = json.loads(payload)
        except ValueError:
            reason = "payload is not valid JSON"
            break
        if not isinstance(op, dict) or not isinstance(op.get("seq"), int):
            reason = "payload is not a sequenced operation object"
            break
        if op["seq"] != seq + 1:
            reason = (
                f"sequence gap (expected {seq + 1}, found {op['seq']})"
            )
            break
        seq = op["seq"]
        records.append(JournalRecord(seq, op, newline + 1))
        pos = newline + 1
    return JournalScan(tuple(records), pos, len(data) - pos, reason)


class CatalogJournal:
    """The writer side: framed, checksummed, fsynced appends.

    ``fsync=False`` trades durability of the last few records for
    speed (used by the overhead benchmark to price the append itself);
    the daemon always runs with ``fsync=True``.
    """

    def __init__(
        self, path: Path | str, *, fsync: bool = True, start_seq: int = 0
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.last_seq = start_seq
        self.appended = 0
        self.fsyncs = 0
        self.bytes_written = 0
        self._handle: io.BufferedWriter | None = None

    def _file(self) -> io.BufferedWriter:
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, op: Mapping[str, Any]) -> int:
        """Durably append one operation; returns its sequence number.

        The record is not acknowledged (the method does not return)
        until the bytes are written and — with ``fsync`` on — synced;
        any failure propagates to the caller *before* the in-memory
        state it describes becomes visible.
        """
        seq = self.last_seq + 1
        frame = _frame(seq, op)
        fire("journal_append")
        handle = self._file()
        handle.write(frame)
        handle.flush()
        fire("journal_fsync")
        if self.fsync:
            os.fsync(handle.fileno())
            self.fsyncs += 1
        self.last_seq = seq
        self.appended += 1
        self.bytes_written += len(frame)
        return seq

    def truncate(self, offset: int) -> None:
        """Drop everything past *offset* (recovery's torn-tail cut)."""
        self.close()
        with open(self.path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())

    def reset(self, *, start_seq: int) -> None:
        """Empty the journal after a snapshot compacted it away.

        The sequence numbering continues from *start_seq* (the
        snapshot's), so replay can verify there is no gap between the
        snapshot and the journal tail.
        """
        self.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self.last_seq = start_seq

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None
