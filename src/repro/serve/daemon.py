"""The asyncio front door: intake, dispatch, drain, introspection.

One :class:`PlanningDaemon` owns four pieces of machinery:

* an **asyncio server** (TCP or Unix socket) reading newline-delimited
  JSON frames per connection (:mod:`repro.serve.protocol`);
* an :class:`~repro.serve.admission.AdmissionController` deciding
  shed-or-admit *before* any planning cost is spent;
* a bounded intake queue feeding **dispatcher coroutines** that submit
  admitted requests to the long-lived
  :class:`~repro.parallel.SupervisedWorkerPool` and stream responses
  back as they settle (responses are correlated by ``id``, not order);
* a **drain protocol**: SIGTERM, SIGINT, or a ``{"type": "drain"}``
  frame stops admission (:class:`~repro.errors.ShuttingDownError` for
  late arrivals), settles in-flight work within ``drain_deadline``
  seconds, shuts the pool down (anything past the deadline resolves
  with a structured ShuttingDownError outcome — never silence), flushes
  the plan cache directory, and exits 0 on a clean drain.

With ``state_dir`` set, the catalog registry is durable: every
register/update/remove is journaled-then-applied
(:mod:`repro.serve.journal`), the drain writes a compacted snapshot
(:mod:`repro.serve.snapshot`), and the next ``run()`` recovers all
named catalogs before the ready line — content-root-verified, with
corrupt content quarantined behind
:class:`~repro.errors.CatalogCorruptionError` (exit 80).

Deadline propagation: a request admitted with a ``timeout`` is stamped
on admission; the dispatcher re-arms the budget with the *remaining*
deadline via :meth:`~repro.planner.limits.ResourceBudget.with_deadline`
before the worker sees it, so queue wait is charged against the
request's budget, not added on top of it.  A request whose deadline
fully elapsed while queued is answered immediately with a structured
:class:`~repro.errors.BudgetExceededError` — shedding late is still
cheaper than planning pointlessly.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import os
import signal
import stat
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import (
    BudgetExceededError,
    ParseError,
    ReproError,
    ShuttingDownError,
)
from ..parallel.supervisor import SupervisedWorkerPool, SupervisorPolicy
from ..parallel.worker import WorkerConfig, WorkerTask
from ..planner.limits import ResourceBudget
from ..service.batch import request_from_payload
from ..service.cache import PlanCache
from ..testing.faults import fire
from ..views.view import ViewCatalog
from .admission import AdmissionController, AdmissionPolicy
from .catalogs import CatalogRegistry
from .protocol import decode_frame, encode_frame, error_response

__all__ = ["PlanningDaemon", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything the daemon needs to listen, admit, and plan."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (reported once listening).
    port: int = 0
    #: When set, a Unix socket path is used instead of TCP.
    unix_socket: str | None = None
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    supervisor: SupervisorPolicy = field(default_factory=SupervisorPolicy)
    worker: WorkerConfig = field(default_factory=WorkerConfig)
    #: CLI-level budget applied to requests without their own timeout.
    default_budget: ResourceBudget | None = None
    #: Dispatcher coroutines; 0 = one per worker plus one.
    dispatchers: int = 0
    #: Seconds a graceful drain may spend settling in-flight work.
    drain_deadline: float = 10.0
    #: Audit-preflight severity for catalog register/update messages:
    #: ``"error"``/``"warning"``/``"info"`` reject catalogs whose C1xx
    #: findings reach that severity; ``None``/``"never"`` disables.
    audit_fail_on: str | None = None
    #: Directory holding the catalog write-ahead journal + snapshots;
    #: ``None`` keeps the registry purely in-memory.  With a state dir
    #: the daemon recovers every named catalog on startup and journals
    #: every mutation before acknowledging it.
    state_dir: str | None = None
    #: Journaled operations between compacted snapshots.
    snapshot_every: int = 64

    def resolve_dispatchers(self) -> int:
        if self.dispatchers > 0:
            return self.dispatchers
        return max(1, self.supervisor.workers) + 1


class _QueueItem:
    """One admitted plan request waiting for a dispatcher."""

    __slots__ = ("rid", "request", "writer", "lock", "admitted_at")

    def __init__(
        self,
        rid: str,
        request: Any,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        admitted_at: float,
    ) -> None:
        self.rid = rid
        self.request = request
        self.writer = writer
        self.lock = lock
        self.admitted_at = admitted_at


class PlanningDaemon:
    """A resident multi-tenant planning service (see module docstring)."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        default_catalog: ViewCatalog | None = None,
        on_ready: Callable[["PlanningDaemon"], None] | None = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.pool = SupervisedWorkerPool(
            self.config.worker, policy=self.config.supervisor
        )
        self.admission = AdmissionController(self.config.admission)
        self.catalogs = CatalogRegistry(
            audit_fail_on=self.config.audit_fail_on,
            state_dir=self.config.state_dir,
            snapshot_every=self.config.snapshot_every,
        )
        self.default_catalog = default_catalog
        self._on_ready = on_ready
        #: ``("tcp", host, port)`` or ``("unix", path)`` once listening.
        self.address: tuple | None = None
        self.started_at: float | None = None
        self.requests_total = 0
        self.responses_total = 0
        self.error_responses = 0
        self.degraded_served = 0
        self._task_seq = itertools.count()
        self._rid_seq = itertools.count(1)
        self._profile_totals: dict[str, float] = {}
        self._search_totals: dict[str, int] = {}
        self._profiled_requests = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._drained: asyncio.Event | None = None
        self._draining = False
        self._drain_reason: str | None = None
        self._drain_started: float | None = None
        self._queue_settled = True
        self.drain_report: dict | None = None
        self.cache_entries_flushed: int | None = None
        #: Result of the drain-time catalog checkpoint (durable mode).
        self.final_checkpoint: dict | None = None

    # -- lifecycle ----------------------------------------------------------
    async def run(self) -> int:
        """Serve until drained; returns the process exit code (0/79)."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._queue = asyncio.Queue()
        self._drained = asyncio.Event()
        self.started_at = time.monotonic()
        self.pool.start()
        if self.config.unix_socket is not None:
            # A previous daemon (cleanly exited or killed) leaves its
            # socket file behind; binding over a stale one must work.
            self._unlink_socket(self.config.unix_socket)
            server = await asyncio.start_unix_server(
                self._on_connection, path=self.config.unix_socket
            )
            self.address = ("unix", self.config.unix_socket)
        else:
            server = await asyncio.start_server(
                self._on_connection, self.config.host, self.config.port
            )
            sock = server.sockets[0].getsockname()
            self.address = ("tcp", sock[0], sock[1])
        installed_signals = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.begin_drain, f"signal:{signum.name}"
                )
                installed_signals.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        dispatchers = [
            asyncio.create_task(self._dispatch())
            for _ in range(self.config.resolve_dispatchers())
        ]
        if self._on_ready is not None:
            self._on_ready(self)
        try:
            await self._drained.wait()
        finally:
            server.close()
            await server.wait_closed()
            if self.config.unix_socket is not None:
                self._unlink_socket(self.config.unix_socket)
            for signum in installed_signals:
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
        for _ in dispatchers:
            self._queue.put_nowait(None)
        if not self._queue_settled:
            # The drain deadline already elapsed queue-side.  Shut the
            # pool down *before* waiting on the dispatchers: that aborts
            # queued tickets and kills in-flight workers so every
            # outstanding future settles with a structured
            # ShuttingDownError — otherwise the dispatchers would keep
            # planning the backlog past the deadline, and a
            # deadline-less in-flight request on a healthy worker would
            # never resolve, hanging the drain forever.
            self.drain_report = await asyncio.to_thread(
                self.pool.shutdown, drain=False
            )
        _, pending = await asyncio.wait(
            dispatchers, timeout=max(self._drain_remaining(), 1.0)
        )
        if pending:
            # Dispatchers missed the deadline (e.g. stuck awaiting a
            # future the pool still holds).  asyncio.wait does not
            # cancel on timeout, so no response is torn mid-write;
            # aborting the pool resolves whatever they are blocked on,
            # and the second wait then settles promptly.
            self._queue_settled = False
            if self.drain_report is None:
                self.drain_report = await asyncio.to_thread(
                    self.pool.shutdown, drain=False
                )
            await asyncio.gather(*dispatchers, return_exceptions=True)
        if self.drain_report is None:
            self.drain_report = await asyncio.to_thread(
                self.pool.shutdown, drain=True, deadline=self._drain_remaining()
            )
        self.cache_entries_flushed = self._flush_cache()
        if self.catalogs.durable:
            # A clean drain leaves the state dir compacted: one
            # snapshot, an empty journal, fast next boot.  Checkpoint
            # failure is non-fatal — the journal alone still recovers.
            try:
                self.final_checkpoint = self.catalogs.checkpoint()
            finally:
                self.catalogs.close()
        clean = (
            self._queue_settled
            and bool(self.drain_report.get("drained", False))
            and int(self.drain_report.get("aborted", 0)) == 0
        )
        return 0 if clean else ShuttingDownError.exit_code

    def begin_drain(self, reason: str = "request") -> None:
        """Flip the daemon into draining mode (idempotent, thread-safe)."""
        if self._draining:
            return
        self._draining = True
        self._drain_reason = reason
        self._drain_started = time.monotonic()
        self.admission.draining = True
        fire("serve_drain")  # phase: stop admitting
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(
            lambda: loop.create_task(self._finish_drain())
        )

    async def _finish_drain(self) -> None:
        assert self._queue is not None and self._drained is not None
        try:
            await asyncio.wait_for(
                self._queue.join(), timeout=self.config.drain_deadline
            )
            self._queue_settled = True
        except asyncio.TimeoutError:
            self._queue_settled = False
        fire("serve_drain")  # phase: in-flight settled (or deadline hit)
        self._drained.set()

    @staticmethod
    def _unlink_socket(path: str) -> None:
        """Remove *path* only if it is (or was) a Unix socket file."""
        try:
            if stat.S_ISSOCK(os.stat(path).st_mode):
                os.unlink(path)
        except OSError:
            pass

    def _drain_remaining(self) -> float:
        if self._drain_started is None:
            return self.config.drain_deadline
        elapsed = time.monotonic() - self._drain_started
        return max(0.0, self.config.drain_deadline - elapsed)

    def _flush_cache(self) -> int | None:
        """Settle the shared plan-cache directory durably (drain step)."""
        cache_dir = self.config.worker.cache_dir
        if cache_dir is None:
            return None
        try:
            cache = PlanCache(
                cache_dir, ttl_seconds=self.config.worker.cache_ttl
            )
            return cache.flush()
        except Exception:
            return None

    # -- intake -------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                await self._handle_frame(stripped, writer, lock)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_frame(
        self,
        raw: bytes,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        self.requests_total += 1
        try:
            payload = decode_frame(raw)
        except ParseError as exc:
            await self._send(writer, lock, error_response(None, exc))
            return
        mtype = str(payload.get("type", "plan"))
        rid = payload.get("id")
        rid = str(rid) if rid is not None else None
        if mtype == "healthz":
            await self._send(writer, lock, {"id": rid, **self.healthz()})
        elif mtype == "stats":
            await self._send(writer, lock, {"id": rid, **self.stats()})
        elif mtype == "drain":
            self.begin_drain("drain message")
            await self._send(
                writer,
                lock,
                {
                    "id": rid,
                    "status": "draining",
                    "drain_deadline": self.config.drain_deadline,
                },
            )
        elif mtype == "catalog":
            try:
                ack = self._handle_catalog(payload)
            except ReproError as exc:
                await self._send(writer, lock, error_response(rid, exc))
            else:
                await self._send(
                    writer, lock, {"id": rid, "status": "ok", **ack}
                )
        elif mtype == "plan":
            await self._handle_plan(payload, writer, lock)
        else:
            await self._send(
                writer,
                lock,
                error_response(
                    rid, ParseError(f"unknown message type {mtype!r}")
                ),
            )

    def _handle_catalog(self, payload: dict) -> dict:
        action = str(payload.get("action", ""))
        name = str(payload.get("name", ""))
        if action == "register":
            views = payload.get("views", [])
            if not isinstance(views, list):
                raise ParseError('catalog "views" must be a list of texts')
            return self.catalogs.register(name, views)
        if action == "update":
            # Validate the catalog name *before* the payload shape: an
            # update naming an unknown (or quarantined) catalog must
            # report the registry-level error consistently, even when
            # the view lists are also malformed.
            self.catalogs.get(name)

            def _texts(key: str) -> list:
                value = payload.get(key, [])
                if not isinstance(value, list):
                    raise ParseError(f'catalog "{key}" must be a list')
                return value

            return self.catalogs.update(
                name,
                add=_texts("add"),
                remove=_texts("remove"),
                replace=_texts("replace"),
            )
        if action == "remove":
            return self.catalogs.remove(name)
        raise ParseError(
            f'unknown catalog action {action!r}; expected "register", '
            '"update", or "remove"'
        )

    async def _handle_plan(
        self,
        payload: dict,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        assert self._loop is not None and self._queue is not None
        raw_id = payload.get("id")
        rid = (
            str(raw_id)
            if raw_id is not None
            else f"req-{next(self._rid_seq)}"
        )
        tenant = str(payload.get("tenant", "default"))
        try:
            self.admission.admit(
                tenant=tenant, queue_depth=self._queue.qsize()
            )
        except ReproError as exc:
            await self._send(writer, lock, error_response(rid, exc))
            return
        try:
            catalog_name = payload.get("catalog")
            catalog = self.catalogs.resolve(
                None if catalog_name is None else str(catalog_name),
                self.default_catalog,
            )
            body = {
                key: value
                for key, value in payload.items()
                if key not in ("type", "tenant", "catalog")
            }
            body.setdefault("id", rid)
            request = request_from_payload(
                body,
                catalog,
                number=rid,
                default_budget=self.config.default_budget,
            )
        except ReproError as exc:
            # Unlike batch, a daemon never aborts on one bad request —
            # the producer is some remote tenant, not our own pipeline.
            await self._send(writer, lock, error_response(rid, exc))
            return
        self._queue.put_nowait(
            _QueueItem(rid, request, writer, lock, self._loop.time())
        )

    # -- dispatch -----------------------------------------------------------
    async def _dispatch(self) -> None:
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            if item is None:
                self._queue.task_done()
                break
            try:
                await self._serve_item(item)
            except Exception as exc:
                # Belt and braces: a dispatcher bug must still answer.
                try:
                    await self._send(
                        item.writer,
                        item.lock,
                        error_response(item.rid, exc),
                    )
                except Exception:
                    pass
            finally:
                self._queue.task_done()

    async def _serve_item(self, item: _QueueItem) -> None:
        assert self._loop is not None
        started = self._loop.time()
        request = item.request
        budget = request.budget
        if budget is not None and budget.deadline_seconds is not None:
            waited = started - item.admitted_at
            remaining = budget.deadline_seconds - waited
            if remaining <= 0:
                error = BudgetExceededError(
                    f"request {request.id!r} spent its whole "
                    f"{budget.deadline_seconds:.3f}s deadline queued "
                    f"({waited:.3f}s); not planned",
                    resource="deadline",
                )
                await self._send(
                    item.writer, item.lock, error_response(item.rid, error)
                )
                return
            request = dataclasses.replace(
                request, budget=budget.with_deadline(remaining)
            )
        task = WorkerTask(index=next(self._task_seq), request=request)
        try:
            future = self.pool.submit(task)
        except ShuttingDownError as exc:
            await self._send(
                item.writer, item.lock, error_response(item.rid, exc)
            )
            return
        result = await asyncio.wrap_future(future)
        if result.error is not None:
            await self._send(
                item.writer, item.lock, error_response(item.rid, result.error)
            )
            return
        outcome = result.outcome
        assert outcome is not None  # error/outcome is exhaustive
        self.admission.record_service_time(self._loop.time() - started)
        if outcome.status == "degraded":
            self.degraded_served += 1
        self._absorb_profile(outcome.to_json())
        response = outcome.to_json()
        response["id"] = item.rid
        await self._send(item.writer, item.lock, response)

    def _absorb_profile(self, payload: dict) -> None:
        profile = payload.get("profile")
        if not isinstance(profile, dict):
            return
        seconds = profile.get("phase_seconds")
        if not isinstance(seconds, dict):
            return
        for phase, value in seconds.items():
            try:
                self._profile_totals[phase] = self._profile_totals.get(
                    phase, 0.0
                ) + float(value)
            except (TypeError, ValueError):
                continue
        search = profile.get("search")
        if isinstance(search, dict):
            for counter, value in search.items():
                try:
                    self._search_totals[counter] = self._search_totals.get(
                        counter, 0
                    ) + int(value)
                except (TypeError, ValueError):
                    continue
        self._profiled_requests += 1

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        payload: dict,
    ) -> None:
        if payload.get("status") == "error":
            self.error_responses += 1
        self.responses_total += 1
        frame = encode_frame(payload)
        try:
            async with lock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass  # client went away; the response is accounted regardless

    # -- introspection ------------------------------------------------------
    def status(self) -> str:
        """Where the daemon sits on the degradation ladder.

        ``draining`` > ``shedding`` (intake queue at capacity right
        now) > ``degraded`` (a worker was restarted, a request got a
        crash outcome, a degraded/stale-cache answer was served — both
        sticky until process restart — or a recovered catalog is
        quarantined, sticky until it is re-registered or removed) >
        ``healthy``.
        """
        if self._draining:
            return "draining"
        depth = self._queue.qsize() if self._queue is not None else 0
        if depth >= self.config.admission.max_queue_depth:
            return "shedding"
        if (
            self.pool.restarts > 0
            or self.pool.crashes > 0
            or self.degraded_served > 0
            or self.catalogs.quarantined_names()
        ):
            return "degraded"
        return "healthy"

    def healthz(self) -> dict:
        """The lightweight liveness payload."""
        return {
            "status": self.status(),
            "draining": self._draining,
            "queue_depth": (
                self._queue.qsize() if self._queue is not None else 0
            ),
            "workers": len(self.pool._slots),
            "busy_workers": self.pool.busy_workers(),
            "uptime_seconds": (
                round(time.monotonic() - self.started_at, 3)
                if self.started_at is not None
                else 0.0
            ),
            "recovered_catalogs": self.catalogs.recovered_catalogs,
            "compactions": self.catalogs.compactions,
            "quarantined_catalogs": len(self.catalogs.quarantined_names()),
        }

    def stats(self) -> dict:
        """The full introspection payload."""
        profile: dict | None = None
        if self._profiled_requests:
            profile = {
                "requests": self._profiled_requests,
                "phase_seconds": {
                    phase: round(seconds, 6)
                    for phase, seconds in sorted(
                        self._profile_totals.items()
                    )
                },
                "search": {
                    counter: total
                    for counter, total in sorted(
                        self._search_totals.items()
                    )
                },
            }
        return {
            **self.healthz(),
            "drain_reason": self._drain_reason,
            "requests": {
                "received": self.requests_total,
                "responses": self.responses_total,
                "errors": self.error_responses,
                "degraded": self.degraded_served,
            },
            "admission": self.admission.stats(),
            "queue_capacity": self.config.admission.max_queue_depth,
            "pool": self.pool.stats(),
            "catalogs": dict(self.catalogs.stats()),
            "durability": self.catalogs.durability_stats(),
            "audit": {
                "enabled": self.catalogs.auditing,
                "audits": self.catalogs.audits,
                "rejections": self.catalogs.audit_rejections,
            },
            "profile": profile,
        }
