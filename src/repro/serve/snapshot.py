"""Compacted catalog snapshots: the journal's periodic checkpoint.

A snapshot is the full registry state — every named catalog's view
texts in registration order plus its recorded content root, and the
names currently quarantined — at one journal sequence number.  Recovery
loads the **latest valid** snapshot and replays only the journal records
past its sequence number; after a successful snapshot the journal is
compacted (emptied, sequence numbering continuing), bounding both
recovery time and disk growth.

Write discipline is exactly the :class:`~repro.service.cache.PlanCache`
one: serialize to a temp file in the same directory, flush, ``fsync``,
then atomically ``os.replace`` into ``snapshot-<seq>.json`` — a crash
mid-write leaves at worst a stray temp file, never a half-written
generation.  The previous generation is kept until the new one is
durable, so a snapshot that *does* end up corrupt on disk (torn by the
kernel, bit-flipped) is skipped with a WARNING in favor of the previous
one.  The ``snapshot_write`` fault point fires before the temp-file
write begins.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Any, Mapping

from ..testing.faults import fire

__all__ = ["SnapshotStore"]

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{16})\.json$")


def _canonical(payload: Mapping[str, Any]) -> bytes:
    """The checksum input: sorted-keys compact JSON (cache discipline)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


class SnapshotStore:
    """Checksummed snapshot generations inside one state directory."""

    #: Generations kept on disk (the current one plus one fallback).
    keep = 2

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.written = 0
        self.skipped = 0

    def path_for(self, seq: int) -> Path:
        return self.root / f"snapshot-{seq:016d}.json"

    def paths(self) -> list[Path]:
        """Snapshot files, oldest first."""
        found = []
        for entry in self.root.iterdir():
            if _SNAPSHOT_RE.match(entry.name):
                found.append(entry)
        return sorted(found)

    def write(self, seq: int, payload: Mapping[str, Any]) -> Path:
        """Durably persist *payload* as the generation at *seq*."""
        fire("snapshot_write")
        document = {
            "checksum": hashlib.sha256(_canonical(payload)).hexdigest(),
            "payload": dict(payload),
        }
        path = self.path_for(seq)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self.written += 1
        self._prune()
        return path

    def _prune(self) -> None:
        """Drop generations beyond :attr:`keep`, oldest first."""
        paths = self.paths()
        for stale in paths[: -self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass

    def load_latest(self) -> tuple[dict | None, list[str]]:
        """The newest *valid* generation's payload, plus skipped files.

        Walks generations newest-first; a snapshot that fails to read,
        parse, or checksum-verify is skipped (its name is returned so
        the registry can WARN and count it) and the previous generation
        is tried — the fallback half of crash-consistent recovery.
        """
        skipped: list[str] = []
        for path in reversed(self.paths()):
            payload = self._load_one(path)
            if payload is not None:
                self.skipped += len(skipped)
                return payload, skipped
            skipped.append(path.name)
        self.skipped += len(skipped)
        return None, skipped

    def _load_one(self, path: Path) -> dict | None:
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict):
            return None
        payload = document.get("payload")
        checksum = document.get("checksum")
        if not isinstance(payload, dict) or not isinstance(checksum, str):
            return None
        if hashlib.sha256(_canonical(payload)).hexdigest() != checksum:
            return None
        if not isinstance(payload.get("seq"), int):
            return None
        return payload
