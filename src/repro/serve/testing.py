"""Test/bench harness: run a daemon on a background thread.

The daemon's natural habitat is its own process (see ``repro serve
run`` and the CI smoke driver); tests and benchmarks instead want it
in-process so they can inspect counters and inject faults
deterministically.  :func:`running_daemon` runs the asyncio loop on a
daemon thread and yields a :class:`DaemonHandle` exposing the bound
address, client factories, and the eventual exit code.
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager
from typing import Iterator

from ..views.view import ViewCatalog
from .client import ServeClient
from .daemon import PlanningDaemon, ServeConfig

__all__ = ["DaemonHandle", "running_daemon"]


class DaemonHandle:
    """A daemon running on a background thread, plus its lifecycle."""

    def __init__(
        self, daemon: PlanningDaemon, thread: threading.Thread
    ) -> None:
        self.daemon = daemon
        self.thread = thread
        self.exit_code: int | None = None

    @property
    def address(self) -> tuple:
        assert self.daemon.address is not None
        return self.daemon.address

    def client(self, *, timeout: float | None = 30.0) -> ServeClient:
        """A fresh connection to the running daemon."""
        address = self.address
        if address[0] == "unix":
            return ServeClient(unix_socket=address[1], timeout=timeout)
        return ServeClient(address[1], address[2], timeout=timeout)

    def begin_drain(self, reason: str = "test") -> None:
        self.daemon.begin_drain(reason)

    def join(self, timeout: float = 60.0) -> int:
        """Wait for the daemon to finish; returns its exit code."""
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():
            raise TimeoutError("daemon thread did not exit in time")
        assert self.exit_code is not None
        return self.exit_code


@contextmanager
def running_daemon(
    config: ServeConfig | None = None,
    *,
    catalog: ViewCatalog | None = None,
    start_timeout: float = 60.0,
) -> Iterator[DaemonHandle]:
    """Run a :class:`PlanningDaemon` for the block; drains on exit.

    The context yields once the daemon is listening.  On exit, if the
    daemon is still serving, a drain is requested and the thread is
    joined — the handle's ``exit_code`` is then populated.
    """
    ready = threading.Event()
    daemon = PlanningDaemon(
        config,
        default_catalog=catalog,
        on_ready=lambda _daemon: ready.set(),
    )
    handle: DaemonHandle | None = None

    def _run() -> None:
        assert handle is not None
        try:
            handle.exit_code = asyncio.run(daemon.run())
        except BaseException:
            handle.exit_code = 70
            ready.set()  # unblock a waiter observing a startup crash
            raise

    thread = threading.Thread(
        target=_run, name="repro-serve-daemon", daemon=True
    )
    handle = DaemonHandle(daemon, thread)
    thread.start()
    if not ready.wait(timeout=start_timeout):
        raise TimeoutError("daemon did not start listening in time")
    if daemon.address is None:
        thread.join(timeout=5.0)
        raise RuntimeError("daemon crashed during startup")
    try:
        yield handle
    finally:
        if thread.is_alive():
            daemon.begin_drain("context exit")
        thread.join(timeout=start_timeout)
