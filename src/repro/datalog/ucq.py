"""Unions of conjunctive queries (Section 8 extension).

When the query and views contain built-in predicates, or when maximally
contained rewritings are sought, a rewriting can be a *union* of
conjunctive queries.  This module provides the data structure and the
classic containment test for unions (Sagiv-Yannakakis): a UCQ ``U1`` is
contained in ``U2`` iff every disjunct of ``U1`` is contained in some
disjunct of ``U2`` (for pure conjunctive disjuncts without built-ins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from .query import ConjunctiveQuery


@dataclass(frozen=True)
class UnionQuery:
    """A union of conjunctive queries sharing one head predicate/arity."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise ValueError("a union query needs at least one disjunct")
        heads = {(q.head.predicate, q.head.arity) for q in self.disjuncts}
        if len(heads) != 1:
            raise ValueError(
                f"disjuncts disagree on the head predicate/arity: {sorted(heads)}"
            )

    @property
    def name(self) -> str:
        """The common head predicate name."""
        return self.disjuncts[0].head.predicate

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __str__(self) -> str:
        return "\n".join(str(q) for q in self.disjuncts)

    def total_subgoals(self) -> int:
        """Total number of body subgoals across all disjuncts.

        The Section 8 discussion compares rewritings both by the number of
        disjuncts and by their subgoal counts; neither dominates the other.
        """
        return sum(len(q) for q in self.disjuncts)


def union_contained_in(
    left: UnionQuery,
    right: UnionQuery,
    cq_contained: Callable[[ConjunctiveQuery, ConjunctiveQuery], bool],
) -> bool:
    """Sagiv-Yannakakis containment for unions of pure CQs.

    ``left ⊑ right`` iff each disjunct of *left* is contained in some
    disjunct of *right*.  The conjunctive-query containment test is
    injected to avoid a circular import with :mod:`repro.containment`.
    """
    return all(
        any(cq_contained(l, r) for r in right.disjuncts) for l in left.disjuncts
    )


def union_equivalent(
    left: UnionQuery,
    right: UnionQuery,
    cq_contained: Callable[[ConjunctiveQuery, ConjunctiveQuery], bool],
) -> bool:
    """Equivalence of two unions of pure conjunctive queries."""
    return union_contained_in(left, right, cq_contained) and union_contained_in(
        right, left, cq_contained
    )


def as_union(query: ConjunctiveQuery | UnionQuery | Iterable[ConjunctiveQuery]) -> UnionQuery:
    """Coerce a CQ, UCQ, or iterable of CQs into a :class:`UnionQuery`."""
    if isinstance(query, UnionQuery):
        return query
    if isinstance(query, ConjunctiveQuery):
        return UnionQuery((query,))
    return UnionQuery(tuple(query))
