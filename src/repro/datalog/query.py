"""Conjunctive queries (select-project-join queries).

A conjunctive query has the form (Section 2.1)::

    h(X1, ..., Xk) :- g1(Y11, ...), ..., gn(Yn1, ...)

where the head arguments are the *distinguished* terms and body variables
not in the head are *nondistinguished* (existential).  Queries are
immutable; all transformation helpers return new queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import MalformedQueryError, UnsafeQueryError
from .atoms import Atom
from .substitution import Substitution
from .terms import Constant, FreshVariableFactory, Term, Variable, is_variable

__all__ = [
    "ConjunctiveQuery",
    "MalformedQueryError",
    "fresh_factory_for",
    "make_query",
]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """An immutable conjunctive query ``head :- body``.

    The body is a *tuple* (ordered, possibly with duplicates removed on
    construction only when requested); order matters for physical plans but
    not for query semantics.
    """

    head: Atom
    body: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))

    # -- basic structure ----------------------------------------------------
    @property
    def name(self) -> str:
        """The head predicate name."""
        return self.head.predicate

    @property
    def arity(self) -> int:
        """The head arity."""
        return self.head.arity

    def __len__(self) -> int:
        return len(self.body)

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        return f"{self.head} :- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self!s})"

    # -- variables ------------------------------------------------------------
    def head_variables(self) -> tuple[Variable, ...]:
        """Distinguished variables in head-argument order (no duplicates)."""
        seen: dict[Variable, None] = {}
        for arg in self.head.args:
            if is_variable(arg):
                seen.setdefault(arg, None)
        return tuple(seen)

    def distinguished_variables(self) -> frozenset[Variable]:
        """The set of distinguished (head) variables."""
        return frozenset(self.head.variables())

    def body_variables(self) -> frozenset[Variable]:
        """All variables appearing in the body."""
        result: set[Variable] = set()
        for atom in self.body:
            result.update(atom.variables())
        return frozenset(result)

    def variables(self) -> frozenset[Variable]:
        """All variables of the query (head and body)."""
        return self.distinguished_variables() | self.body_variables()

    def existential_variables(self) -> frozenset[Variable]:
        """Body variables that do not appear in the head."""
        return self.body_variables() - self.distinguished_variables()

    def constants(self) -> frozenset[Constant]:
        """All constants appearing in the query."""
        result: set[Constant] = set(
            arg for arg in self.head.args if isinstance(arg, Constant)
        )
        for atom in self.body:
            result.update(atom.constants())
        return frozenset(result)

    def predicates(self) -> frozenset[str]:
        """The set of body predicate names."""
        return frozenset(atom.predicate for atom in self.body)

    def atoms_with(self, variable: Variable) -> tuple[Atom, ...]:
        """The body atoms in which *variable* occurs."""
        return tuple(atom for atom in self.body if variable in atom.variable_set())

    # -- validation -----------------------------------------------------------
    def is_safe(self) -> bool:
        """Safety: every head variable appears in the body (Section 2.1)."""
        return self.distinguished_variables() <= self.body_variables()

    def check_safe(self) -> "ConjunctiveQuery":
        """Raise :class:`~repro.errors.UnsafeQueryError` if unsafe.

        ``UnsafeQueryError`` subclasses the historical
        :class:`MalformedQueryError`, so old handlers keep working.
        """
        if not self.is_safe():
            missing = self.distinguished_variables() - self.body_variables()
            names = ", ".join(sorted(v.name for v in missing))
            raise UnsafeQueryError(
                f"unsafe query: head variables {{{names}}} do not occur in the body"
            )
        return self

    # -- transformations --------------------------------------------------------
    def apply(self, substitution: Substitution) -> "ConjunctiveQuery":
        """Apply a substitution to the head and every body atom."""
        return ConjunctiveQuery(
            substitution.apply_atom(self.head),
            substitution.apply_atoms(self.body),
        )

    def with_body(self, body: Iterable[Atom]) -> "ConjunctiveQuery":
        """Return a query with the same head and the given body."""
        return ConjunctiveQuery(self.head, tuple(body))

    def without_atom(self, index: int) -> "ConjunctiveQuery":
        """Return a query with the body atom at *index* removed."""
        return ConjunctiveQuery(
            self.head, self.body[:index] + self.body[index + 1 :]
        )

    def dedup_body(self) -> "ConjunctiveQuery":
        """Remove duplicate body atoms, preserving first occurrences."""
        seen: dict[Atom, None] = {}
        for atom in self.body:
            seen.setdefault(atom, None)
        return self.with_body(seen)

    def rename_apart(
        self, factory: FreshVariableFactory, keep: Iterable[Variable] = ()
    ) -> tuple["ConjunctiveQuery", Substitution]:
        """Rename all variables (except *keep*) to fresh ones.

        Returns the renamed query and the renaming substitution used.
        """
        kept = set(keep)
        renaming = Substitution(
            {
                var: factory.fresh_like(var)
                for var in sorted(self.variables(), key=lambda v: v.name)
                if var not in kept
            }
        )
        return self.apply(renaming), renaming

    def canonical_form(self) -> str:
        """A string invariant under body reordering (not under renaming).

        Useful as a cheap pre-filter before expensive equivalence checks.
        """
        body = sorted(str(atom) for atom in self.body)
        return f"{self.head} :- {'; '.join(body)}"

    # -- structural invariants used as hashing pre-filters -------------------
    def signature(self) -> tuple:
        """A renaming-invariant structural signature.

        Two equivalent *minimized* queries necessarily have equal
        signatures, so grouping by signature is a sound pre-partition for
        equivalence-class computation (Section 5.2).
        """
        predicate_counts = sorted(
            (atom.predicate, atom.arity) for atom in self.body
        )
        constant_positions = sorted(
            (atom.predicate, i, repr(arg.value))
            for atom in self.body
            for i, arg in enumerate(atom.args)
            if isinstance(arg, Constant)
        )
        return (
            self.head.predicate,
            self.head.arity,
            tuple(predicate_counts),
            tuple(constant_positions),
            len(self.existential_variables()),
        )


def make_query(
    head_predicate: str,
    head_args: Sequence[Term],
    body: Iterable[Atom],
) -> ConjunctiveQuery:
    """Convenience constructor that also checks safety."""
    query = ConjunctiveQuery(Atom(head_predicate, tuple(head_args)), tuple(body))
    return query.check_safe()


def fresh_factory_for(*queries: ConjunctiveQuery) -> FreshVariableFactory:
    """A fresh-variable factory avoiding the variables of all *queries*."""
    names: set[str] = set()
    for query in queries:
        names.update(v.name for v in query.variables())
    return FreshVariableFactory(names)
