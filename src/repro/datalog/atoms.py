"""Atoms (subgoals) of conjunctive queries.

An atom is a predicate name applied to a tuple of terms, e.g.
``car(M, 'anderson')``.  Atoms are immutable and hashable so they can be
used as dictionary keys and set members throughout the containment and
CoreCover machinery.

Besides *relational* atoms, the module supports *comparison* atoms
(``X <= Y`` and friends) used by the Section 8 extension on built-in
predicates.  Comparison atoms are ordinary :class:`Atom` objects whose
predicate is one of :data:`COMPARISON_PREDICATES`; most algorithms in the
package treat them separately or reject them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from .terms import Constant, Term, Variable, is_variable

#: Built-in comparison predicates supported by the engine extension.
COMPARISON_PREDICATES = frozenset({"<", "<=", ">", ">=", "!=", "="})


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate applied to terms: ``predicate(args[0], ..., args[n-1])``."""

    predicate: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))
        for arg in self.args:
            if not isinstance(arg, (Variable, Constant)):
                raise TypeError(
                    f"atom argument must be a Variable or Constant, got {arg!r}"
                )

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def is_comparison(self) -> bool:
        """Whether this atom is a built-in comparison such as ``<=``."""
        return self.predicate in COMPARISON_PREDICATES

    def variables(self) -> Iterator[Variable]:
        """Yield the variables among the arguments, with repetitions."""
        for arg in self.args:
            if is_variable(arg):
                yield arg

    def variable_set(self) -> frozenset[Variable]:
        """The set of variables appearing in this atom."""
        return frozenset(self.variables())

    def constants(self) -> Iterator[Constant]:
        """Yield the constants among the arguments, with repetitions."""
        for arg in self.args:
            if isinstance(arg, Constant):
                yield arg

    def __str__(self) -> str:
        if self.is_comparison and self.arity == 2:
            return f"{self.args[0]} {self.predicate} {self.args[1]}"
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.predicate}({rendered})"

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.args!r})"

    def __reduce__(self):
        # Re-intern on unpickle: the args tuple is reconstructed first
        # (each term through its own re-interning reduce), so atoms that
        # cross a process boundary collapse to one canonical object and
        # InternTable's id()-keyed fast path stays hot.
        return (interned_atom, (self.predicate, self.args))


#: Soft cap mirroring the term pools (see :mod:`repro.datalog.terms`).
_POOL_CAP = 1_000_000

_ATOM_POOL: dict[tuple[str, tuple[Term, ...]], Atom] = {}


def interned_atom(predicate: str, args: tuple[Term, ...]) -> Atom:
    """The process-canonical :class:`Atom` for ``predicate(args)``."""
    try:
        key = (predicate, args)
        atom = _ATOM_POOL.get(key)
    except TypeError:  # unhashable constant among the args
        return Atom(predicate, args)
    if atom is None:
        atom = Atom(predicate, args)
        if len(_ATOM_POOL) < _POOL_CAP:
            _ATOM_POOL[key] = atom
    return atom


def clear_interned_atoms() -> None:
    """Drop the atom intern pool (tests and pool-lifetime management)."""
    _ATOM_POOL.clear()


def make_atom(predicate: str, args: Sequence[Term]) -> Atom:
    """Convenience constructor accepting any sequence of terms."""
    return Atom(predicate, tuple(args))
