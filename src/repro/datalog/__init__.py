"""Datalog substrate: terms, atoms, conjunctive queries, and a parser."""

from .atoms import COMPARISON_PREDICATES, Atom, make_atom
from .interning import InternTable
from .parser import DatalogSyntaxError, parse_atom, parse_program, parse_query
from .query import (
    ConjunctiveQuery,
    MalformedQueryError,
    fresh_factory_for,
    make_query,
)
from .substitution import IDENTITY, Substitution
from .terms import (
    Constant,
    FreshVariableFactory,
    Term,
    Variable,
    is_constant,
    is_variable,
)
from .sql import SqlError, SqlSchema, parse_sql, to_sql
from .ucq import UnionQuery, as_union, union_contained_in, union_equivalent

__all__ = [
    "Atom",
    "COMPARISON_PREDICATES",
    "Constant",
    "ConjunctiveQuery",
    "DatalogSyntaxError",
    "FreshVariableFactory",
    "IDENTITY",
    "InternTable",
    "MalformedQueryError",
    "SqlError",
    "SqlSchema",
    "Substitution",
    "Term",
    "UnionQuery",
    "Variable",
    "as_union",
    "fresh_factory_for",
    "is_constant",
    "is_variable",
    "make_atom",
    "make_query",
    "parse_atom",
    "parse_program",
    "parse_query",
    "parse_sql",
    "to_sql",
    "union_contained_in",
    "union_equivalent",
]
