"""A SQL front-end for conjunctive queries.

The paper works with select-project-join queries, which are exactly the
``SELECT DISTINCT … FROM … WHERE …`` fragment of SQL with conjunctive
``WHERE`` clauses.  This module translates between that fragment and
:class:`~repro.datalog.query.ConjunctiveQuery`, so view definitions and
queries can be authored in SQL:

    >>> schema = SqlSchema({"car": ["make", "dealer"],
    ...                     "loc": ["dealer", "city"]})
    >>> q = parse_sql(
    ...     "SELECT c.make, l.city FROM car c, loc l "
    ...     "WHERE c.dealer = l.dealer AND c.dealer = 'anderson'",
    ...     schema, name="q1")
    >>> print(q)
    q1(C_MAKE, L_CITY) :- car(C_MAKE, anderson), loc(anderson, L_CITY)

Supported: table aliases, equality joins, column = literal, literal
comparisons (``<``, ``<=``, …) between columns or against literals, and
``SELECT *``.  Everything is set semantics (``DISTINCT`` is implied), as
in the paper.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .atoms import Atom
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable, is_variable


class SqlError(ValueError):
    """Raised for unsupported or malformed SQL."""


class SqlSchema:
    """Relation schemas: table name -> ordered column names."""

    def __init__(self, tables: Mapping[str, Sequence[str]]) -> None:
        self._tables = {
            name: tuple(columns) for name, columns in tables.items()
        }

    def columns(self, table: str) -> tuple[str, ...]:
        try:
            return self._tables[table.lower()]
        except KeyError:
            raise SqlError(f"unknown table {table!r}") from None

    def position(self, table: str, column: str) -> int:
        columns = self.columns(table)
        try:
            return columns.index(column.lower())
        except ValueError:
            raise SqlError(
                f"table {table!r} has no column {column!r}; "
                f"columns are {list(columns)}"
            ) from None

    def __contains__(self, table: object) -> bool:
        return isinstance(table, str) and table.lower() in self._tables


@dataclass(frozen=True)
class _ColumnRef:
    alias: str
    column: str

    def variable(self) -> Variable:
        return Variable(f"{self.alias.upper()}_{self.column.upper()}")


_SQL_RE = re.compile(
    r"^\s*select\s+(?P<select>.*?)\s+from\s+(?P<tables>.*?)"
    r"(?:\s+where\s+(?P<where>.*?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_LITERAL_RE = re.compile(r"^(?:'(?P<str>[^']*)'|(?P<num>-?\d+(?:\.\d+)?))$")
_COLUMN_RE = re.compile(r"^(?P<alias>[A-Za-z_][\w]*)\.(?P<column>[A-Za-z_][\w]*)$")
_CMP_RE = re.compile(r"(<=|>=|<>|!=|=|<|>)")


class _UnionFind:
    """Union-find over column references, for join-equality classes."""

    def __init__(self) -> None:
        self._parent: dict[object, object] = {}

    def find(self, item: object) -> object:
        self._parent.setdefault(item, item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: object, right: object) -> None:
        self._parent[self.find(left)] = self.find(right)

    def items(self) -> Iterable[object]:
        return list(self._parent)


def _parse_literal(text: str) -> Constant | None:
    match = _LITERAL_RE.match(text.strip())
    if match is None:
        return None
    if match.group("str") is not None:
        return Constant(match.group("str"))
    number = match.group("num")
    return Constant(float(number) if "." in number else int(number))


def _parse_column(text: str, aliases: Mapping[str, str]) -> _ColumnRef | None:
    text = text.strip()
    match = _COLUMN_RE.match(text)
    if match is None:
        return None
    alias = match.group("alias").lower()
    if alias not in aliases:
        raise SqlError(f"unknown table alias {alias!r} in {text!r}")
    return _ColumnRef(alias, match.group("column").lower())


def parse_sql(
    sql: str, schema: SqlSchema, name: str = "q"
) -> ConjunctiveQuery:
    """Translate a SELECT-FROM-WHERE statement into a conjunctive query."""
    match = _SQL_RE.match(sql)
    if match is None:
        raise SqlError("expected SELECT ... FROM ... [WHERE ...]")

    # FROM: ``table [AS] alias`` entries.
    aliases: dict[str, str] = {}
    order: list[str] = []
    for entry in match.group("tables").split(","):
        tokens = entry.split()
        if not tokens:
            raise SqlError("empty FROM entry")
        table = tokens[0].lower()
        if len(tokens) == 1:
            alias = table
        elif len(tokens) == 2:
            alias = tokens[1].lower()
        elif len(tokens) == 3 and tokens[1].lower() == "as":
            alias = tokens[2].lower()
        else:
            raise SqlError(f"cannot parse FROM entry {entry.strip()!r}")
        if alias in aliases:
            raise SqlError(f"duplicate alias {alias!r}")
        if table not in schema:
            raise SqlError(f"unknown table {table!r}")
        aliases[alias] = table
        order.append(alias)

    def resolve_column(text_item: str) -> _ColumnRef | None:
        ref = _parse_column(text_item, aliases)
        if ref is not None:
            # Validate the column against the schema now.
            schema.position(aliases[ref.alias], ref.column)
        return ref

    # WHERE: conjunctive predicates.
    equalities = _UnionFind()
    constants: dict[object, Constant] = {}
    comparisons: list[tuple[str, object, object]] = []
    where = match.group("where")
    if where:
        for clause in re.split(r"\s+and\s+", where, flags=re.IGNORECASE):
            parts = _CMP_RE.split(clause, maxsplit=1)
            if len(parts) != 3:
                raise SqlError(f"cannot parse predicate {clause.strip()!r}")
            left_text, operator, right_text = parts
            operator = "!=" if operator == "<>" else operator
            left = resolve_column(left_text) or _parse_literal(left_text)
            right = resolve_column(right_text) or _parse_literal(right_text)
            if left is None or right is None:
                raise SqlError(f"cannot parse predicate {clause.strip()!r}")
            if operator == "=":
                if isinstance(left, Constant) and isinstance(right, Constant):
                    raise SqlError("constant = constant predicates are not supported")
                if isinstance(left, Constant):
                    left, right = right, left
                if isinstance(right, Constant):
                    root = equalities.find(left)
                    existing = constants.get(root)
                    if existing is not None and existing != right:
                        raise SqlError(
                            f"column {left} equated to two constants"
                        )
                    constants[root] = right
                else:
                    # Re-root constants after the union.
                    pinned = constants.pop(equalities.find(left), None) or \
                        constants.pop(equalities.find(right), None)
                    equalities.union(left, right)
                    if pinned is not None:
                        constants[equalities.find(left)] = pinned
            else:
                comparisons.append((operator, left, right))

    def term_for(ref_or_const: object) -> Term:
        if isinstance(ref_or_const, Constant):
            return ref_or_const
        root = equalities.find(ref_or_const)
        pinned = constants.get(root)
        if pinned is not None:
            return pinned
        assert isinstance(root, _ColumnRef)
        return root.variable()

    # Normalize the constant map so lookups use current roots.
    constants = {equalities.find(k): v for k, v in constants.items()}

    # Body atoms: one per FROM entry.
    body: list[Atom] = []
    for alias in order:
        table = aliases[alias]
        args = tuple(
            term_for(_ColumnRef(alias, column))
            for column in schema.columns(table)
        )
        body.append(Atom(table, args))
    for operator, left, right in comparisons:
        body.append(Atom(operator, (term_for(left), term_for(right))))

    # Head: the SELECT list.
    select = match.group("select").strip()
    if select.lower().startswith("distinct"):
        select = select[len("distinct"):].strip()
    head_args: list[Term] = []
    if select == "*":
        seen: set[Term] = set()
        for alias in order:
            for column in schema.columns(aliases[alias]):
                term = term_for(_ColumnRef(alias, column))
                if is_variable(term) and term not in seen:
                    seen.add(term)
                    head_args.append(term)
    else:
        for item in select.split(","):
            item = item.split()[0]  # drop "AS alias" renames
            column = resolve_column(item)
            if column is None:
                literal = _parse_literal(item)
                if literal is None:
                    raise SqlError(f"cannot parse SELECT item {item!r}")
                head_args.append(literal)
            else:
                head_args.append(term_for(column))

    return ConjunctiveQuery(Atom(name, tuple(head_args)), tuple(body))


def to_sql(query: ConjunctiveQuery, schema: SqlSchema) -> str:
    """Render a conjunctive query back to a SELECT statement.

    Every relational subgoal becomes a FROM entry (aliased ``t0, t1, …``);
    shared variables and constants become WHERE equalities; comparison
    atoms become WHERE predicates.
    """
    relational = [atom for atom in query.body if not atom.is_comparison]
    comparisons = [atom for atom in query.body if atom.is_comparison]

    first_site: dict[Variable, str] = {}
    predicates: list[str] = []
    from_entries: list[str] = []
    for index, atom in enumerate(relational):
        alias = f"t{index}"
        columns = schema.columns(atom.predicate)
        if len(columns) != atom.arity:
            raise SqlError(
                f"schema arity mismatch for {atom.predicate!r}"
            )
        from_entries.append(f"{atom.predicate} {alias}")
        for column, arg in zip(columns, atom.args):
            site = f"{alias}.{column}"
            if isinstance(arg, Constant):
                predicates.append(f"{site} = {_render_literal(arg)}")
            elif arg in first_site:
                predicates.append(f"{site} = {first_site[arg]}")
            else:
                first_site[arg] = site

    for atom in comparisons:
        left, right = (
            first_site[arg] if is_variable(arg) else _render_literal(arg)
            for arg in atom.args
        )
        predicates.append(f"{left} {atom.predicate} {right}")

    select_items = []
    for arg in query.head.args:
        if isinstance(arg, Constant):
            select_items.append(_render_literal(arg))
        else:
            try:
                select_items.append(first_site[arg])
            except KeyError:
                raise SqlError(f"head variable {arg} not bound in the body")
    # Boolean (zero-ary) queries follow the EXISTS convention: SELECT 1.
    select = ", ".join(select_items) if select_items else "1"

    sql = f"SELECT DISTINCT {select} FROM {', '.join(from_entries)}"
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    return sql


def _render_literal(constant: Constant) -> str:
    value = constant.value
    if isinstance(value, (int, float)):
        return str(value)
    return "'" + str(value).replace("'", "''") + "'"
