"""Hypergraph structure of conjunctive queries: GYO reduction, join trees.

A conjunctive query's *body hypergraph* has the body variables as
vertices and the relational atoms' variable sets as hyperedges.  The
query is **alpha-acyclic** exactly when the GYO (Graham /
Yu-Ozsoyoglu) reduction empties that hypergraph — equivalently, when the
hypergraph admits a **join tree**: a forest over the atoms such that for
every variable the atoms containing it form a connected subtree (the
running-intersection property).

Two consumers share this module:

* the C106 catalog-audit rule (:mod:`repro.analysis.catalog`), which
  classifies every view's acyclicity up front, and
* the planner's acyclic fast path
  (:mod:`repro.containment.join_guided`), which uses the join tree to
  run Yannakakis-style semijoin filtering instead of blind backtracking
  (Geck et al., "Rewriting with Acyclic Queries: Mind Your Head",
  PAPERS.md) and to order the set-cover pivots.

The reduction repeats two moves until neither applies:

1. delete an *ear vertex* — a variable occurring in exactly one
   hyperedge; and
2. delete a hyperedge contained in another hyperedge (empty edges and
   duplicates included).

Comparison atoms are not hyperedges: they constrain but do not join, so
only relational atoms shape the hypergraph — the same convention as the
catalog's predicate-signature index.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from .atoms import Atom
from .query import ConjunctiveQuery
from .terms import Variable

__all__ = [
    "JoinTree",
    "gyo_reduce",
    "is_acyclic",
    "join_tree",
    "join_tree_of_atoms",
]


def gyo_reduce(query: ConjunctiveQuery) -> tuple[frozenset[Variable], ...]:
    """The hyperedges the GYO reduction could **not** eliminate.

    An empty result means *query* is alpha-acyclic; a non-empty result
    is the irreducible cyclic core (every remaining edge participates in
    a cycle witness).  The reduction runs to a fixpoint of the two GYO
    moves, so the result is independent of elimination order (the GYO
    reduction is Church-Rosser).
    """
    edges: list[frozenset[Variable]] = [
        frozenset(atom.variable_set())
        for atom in query.body
        if not atom.is_comparison
    ]
    changed = True
    while changed and edges:
        changed = False
        # Move 1: drop vertices living in exactly one hyperedge.
        occurrences = Counter(v for edge in edges for v in set(edge))
        lonely = {v for v, count in occurrences.items() if count == 1}
        if lonely:
            trimmed = [edge - lonely for edge in edges]
            if trimmed != edges:
                edges = trimmed
                changed = True
        # Move 2: drop any edge contained in another (duplicates count).
        survivors: list[frozenset[Variable]] = []
        for i, edge in enumerate(edges):
            absorbed = any(
                (edge < other) or (edge == other and i > j)
                for j, other in enumerate(edges)
                if i != j
            )
            if not edge or absorbed:
                changed = True
                continue
            survivors.append(edge)
        edges = survivors
    return tuple(edges)


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """Whether *query*'s body hypergraph is alpha-acyclic (GYO-reducible).

    Queries with fewer than two relational atoms are trivially acyclic.
    """
    return not gyo_reduce(query)


@dataclass(frozen=True)
class JoinTree:
    """An ear-elimination join forest over a sequence of relational atoms.

    Nodes are **positions** into the atom sequence the tree was built
    from (comparison atoms are never nodes).  ``order`` lists the
    positions in ear-elimination order — every node appears *before* its
    parent, so iterating ``order`` is a valid bottom-up (leaves-first)
    schedule and ``reversed(order)`` a valid top-down one.  ``parent``
    is aligned with ``order``; ``-1`` marks a root (one per connected
    component, so disconnected bodies yield a forest).
    """

    #: Atom positions in ear-elimination order (children before parents).
    order: tuple[int, ...]
    #: ``parent[k]`` is the parent position of ``order[k]``, ``-1`` for roots.
    parent: tuple[int, ...]
    #: Longest root-to-leaf path, counted in nodes (0 for an empty tree).
    depth: int

    @property
    def roots(self) -> tuple[int, ...]:
        """The root positions (one per connected component)."""
        return tuple(
            node for node, up in zip(self.order, self.parent) if up == -1
        )

    def parent_of(self, position: int) -> int:
        """The parent of atom *position* (``-1`` for a root)."""
        return self.parent[self.order.index(position)]

    def traversal(self) -> tuple[int, ...]:
        """Atom positions root-first (the reverse elimination order)."""
        return tuple(reversed(self.order))


def join_tree_of_atoms(atoms: Sequence[Atom]) -> "JoinTree | None":
    """A join tree over the relational atoms of *atoms*, or ``None``.

    ``None`` means the hypergraph is cyclic (no join tree exists — the
    classical equivalence with GYO reducibility).  Ears are eliminated
    lowest-position-first each round, so the result is deterministic.
    An atom sharing no variables with the rest becomes the root of its
    own component.
    """
    remaining: list[tuple[int, frozenset[Variable]]] = [
        (position, frozenset(atom.variable_set()))
        for position, atom in enumerate(atoms)
        if not atom.is_comparison
    ]
    order: list[int] = []
    parents: list[int] = []
    while len(remaining) > 1:
        eliminated: tuple[int, int, int] | None = None
        for slot, (position, variables) in enumerate(remaining):
            others = remaining[:slot] + remaining[slot + 1 :]
            boundary = variables & frozenset().union(
                *(other_vars for _, other_vars in others)
            )
            if not boundary:
                # Disconnected from the rest: root of its own component.
                eliminated = (slot, position, -1)
                break
            witness = next(
                (
                    other_position
                    for other_position, other_vars in others
                    if boundary <= other_vars
                ),
                None,
            )
            if witness is not None:
                eliminated = (slot, position, witness)
                break
        if eliminated is None:
            return None  # no ear: the hypergraph is cyclic
        slot, position, parent = eliminated
        order.append(position)
        parents.append(parent)
        del remaining[slot]
    for position, _ in remaining:
        order.append(position)
        parents.append(-1)

    parent_of = dict(zip(order, parents))
    depth_of: dict[int, int] = {}
    for position in reversed(order):  # roots first, so parents are done
        up = parent_of[position]
        depth_of[position] = 1 if up == -1 else depth_of[up] + 1
    return JoinTree(
        order=tuple(order),
        parent=tuple(parents),
        depth=max(depth_of.values(), default=0),
    )


def join_tree(query: ConjunctiveQuery) -> "JoinTree | None":
    """A join tree over *query*'s body, or ``None`` when cyclic.

    Node positions index into ``query.body``; comparison atoms are
    skipped (they are not hyperedges), so their positions never appear.
    """
    return join_tree_of_atoms(query.body)
