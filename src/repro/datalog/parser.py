"""A small parser for the datalog-style syntax used throughout the paper.

Grammar (informal)::

    rule      :=  atom ":-" literal ("," literal)*
    literal   :=  atom | term CMP term
    atom      :=  IDENT "(" term ("," term)* ")"  |  IDENT "(" ")"
    term      :=  VARIABLE | CONSTANT
    CMP       :=  "<=" | ">=" | "!=" | "<" | ">" | "="

Following the paper's convention (Section 2.1), identifiers beginning with
an upper-case letter are variables and identifiers beginning with a
lower-case letter or a digit are constants.  Quoted strings and bare
integers are constants.  ``_`` denotes a fresh anonymous variable.

Example::

    >>> parse_query("q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)")
    ConjunctiveQuery(q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C))
"""

from __future__ import annotations

import itertools
import re
from typing import Iterator

from .atoms import COMPARISON_PREDICATES, Atom
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable


class DatalogSyntaxError(ValueError):
    """Raised when the input text is not valid datalog."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>:-)
  | (?P<cmp><=|>=|!=|<|>|=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise DatalogSyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind != "ws":
            yield kind, match.group()
    yield "eof", ""


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._index = 0
        self._anon = itertools.count()

    # -- token helpers ---------------------------------------------------
    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._index]

    def _advance(self) -> tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> str:
        actual_kind, value = self._advance()
        if actual_kind != kind:
            raise DatalogSyntaxError(f"expected {kind}, got {value!r}")
        return value

    # -- grammar -----------------------------------------------------------
    def parse_rule(self) -> ConjunctiveQuery:
        head = self.parse_atom()
        self._expect("arrow")
        body = [self.parse_literal()]
        while self._peek()[0] == "comma":
            self._advance()
            body.append(self.parse_literal())
        self._expect("eof")
        return ConjunctiveQuery(head, tuple(body))

    def parse_literal(self) -> Atom:
        # Either ``ident(...)`` or ``term CMP term``.
        kind, _value = self._peek()
        if kind == "ident" and self._tokens[self._index + 1][0] == "lparen":
            return self.parse_atom()
        left = self.parse_term()
        operator = self._expect("cmp")
        right = self.parse_term()
        if operator not in COMPARISON_PREDICATES:
            raise DatalogSyntaxError(f"unknown comparison {operator!r}")
        return Atom(operator, (left, right))

    def parse_atom(self) -> Atom:
        predicate = self._expect("ident")
        self._expect("lparen")
        args: list[Term] = []
        if self._peek()[0] != "rparen":
            args.append(self.parse_term())
            while self._peek()[0] == "comma":
                self._advance()
                args.append(self.parse_term())
        self._expect("rparen")
        return Atom(predicate, tuple(args))

    def parse_term(self) -> Term:
        kind, value = self._advance()
        if kind == "string":
            return Constant(value[1:-1])
        if kind == "number":
            return Constant(float(value) if "." in value else int(value))
        if kind == "ident":
            if value == "_":
                return Variable(f"_Anon{next(self._anon)}")
            if value[0].isupper():
                return Variable(value)
            return Constant(value)
        raise DatalogSyntaxError(f"expected a term, got {value!r}")


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive-query rule such as ``q(X) :- e(X, X)``."""
    return _Parser(text).parse_rule()


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``v1(M, a, C)``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    parser._expect("eof")
    return atom


def parse_program(text: str) -> list[ConjunctiveQuery]:
    """Parse one rule per non-empty, non-comment (``#``/``%``) line."""
    rules = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "%")):
            continue
        rules.append(parse_query(stripped))
    return rules
