"""A small parser for the datalog-style syntax used throughout the paper.

Grammar (informal)::

    rule      :=  atom ":-" literal ("," literal)*
    literal   :=  atom | term CMP term
    atom      :=  IDENT "(" term ("," term)* ")"  |  IDENT "(" ")"
    term      :=  VARIABLE | CONSTANT
    CMP       :=  "<=" | ">=" | "!=" | "<" | ">" | "="

Following the paper's convention (Section 2.1), identifiers beginning with
an upper-case letter are variables and identifiers beginning with a
lower-case letter or a digit are constants.  Quoted strings and bare
integers are constants.  ``_`` denotes a fresh anonymous variable.

Errors carry source positions (offset, and line/column inside
:func:`parse_program`) and are drawn from the shared taxonomy in
:mod:`repro.errors`: plain syntax problems raise :class:`ParseError`
(still importable here under its historical name
``DatalogSyntaxError``), a predicate used with two different arities
raises :class:`~repro.errors.ArityMismatchError`, and — when safety is
requested — an unsafe head raises
:class:`~repro.errors.UnsafeQueryError`.

Example::

    >>> parse_query("q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)")
    ConjunctiveQuery(q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C))
"""

from __future__ import annotations

import itertools
import re
from typing import Iterator

from ..errors import ArityMismatchError, ParseError, UnsafeQueryError
from .atoms import COMPARISON_PREDICATES, Atom
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable

#: Historical name: the parser predates the shared error taxonomy.  An
#: alias (not a subclass) so ``except DatalogSyntaxError`` keeps catching
#: every parse-level failure, including the refined arity/safety errors.
DatalogSyntaxError = ParseError


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>:-)
  | (?P<cmp><=|>=|!=|<|>|=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


def _position(text: str, offset: int) -> str:
    """Render *offset* as ``offset N (line L, column C)``."""
    line = text.count("\n", 0, offset) + 1
    column = offset - (text.rfind("\n", 0, offset) + 1) + 1
    return f"offset {offset} (line {line}, column {column})"


def _tokenize(text: str) -> Iterator[tuple[str, str, int]]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at "
                f"{_position(text, position)}"
            )
        start = position
        position = match.end()
        kind = match.lastgroup
        if kind != "ws":
            yield kind, match.group(), start
    yield "eof", "", len(text)


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = list(_tokenize(text))
        self._index = 0
        self._anon = itertools.count()

    # -- token helpers ---------------------------------------------------
    def _peek(self) -> tuple[str, str, int]:
        return self._tokens[self._index]

    def _advance(self) -> tuple[str, str, int]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> str:
        actual_kind, value, offset = self._advance()
        if actual_kind != kind:
            shown = value if actual_kind != "eof" else "end of input"
            raise ParseError(
                f"expected {kind}, got {shown!r} at "
                f"{_position(self._text, offset)}"
            )
        return value

    # -- grammar -----------------------------------------------------------
    def parse_rule(self) -> ConjunctiveQuery:
        head = self.parse_atom()
        self._expect("arrow")
        body = [self.parse_literal()]
        while self._peek()[0] == "comma":
            self._advance()
            body.append(self.parse_literal())
        self._expect("eof")
        return ConjunctiveQuery(head, tuple(body))

    def parse_literal(self) -> Atom:
        # Either ``ident(...)`` or ``term CMP term``.
        kind, _value, _offset = self._peek()
        if kind == "ident" and self._tokens[self._index + 1][0] == "lparen":
            return self.parse_atom()
        left = self.parse_term()
        operator = self._expect("cmp")
        right = self.parse_term()
        if operator not in COMPARISON_PREDICATES:
            raise ParseError(f"unknown comparison {operator!r}")
        return Atom(operator, (left, right))

    def parse_atom(self) -> Atom:
        predicate = self._expect("ident")
        self._expect("lparen")
        args: list[Term] = []
        if self._peek()[0] != "rparen":
            args.append(self.parse_term())
            while self._peek()[0] == "comma":
                self._advance()
                args.append(self.parse_term())
        self._expect("rparen")
        return Atom(predicate, tuple(args))

    def parse_term(self) -> Term:
        kind, value, offset = self._advance()
        if kind == "string":
            return Constant(value[1:-1])
        if kind == "number":
            return Constant(float(value) if "." in value else int(value))
        if kind == "ident":
            if value == "_":
                return Variable(f"_Anon{next(self._anon)}")
            if value[0].isupper():
                return Variable(value)
            return Constant(value)
        shown = value if kind != "eof" else "end of input"
        raise ParseError(
            f"expected a term, got {shown!r} at "
            f"{_position(self._text, offset)}"
        )


def check_arities(
    rule: ConjunctiveQuery,
    known: dict[str, tuple[int, object]] | None = None,
    *,
    origin: object = None,
) -> dict[str, tuple[int, object]]:
    """Reject a predicate used with two different arities.

    Comparison atoms are excluded: their "predicates" are operators with
    a fixed arity of two.  Pass the returned mapping back in to extend
    the check across rules; *origin* labels where each arity was first
    seen (e.g. a line number) for the error message.
    """
    arities = known if known is not None else {}
    for atom in (rule.head, *rule.body):
        if atom.is_comparison:
            continue
        first = arities.setdefault(atom.predicate, (atom.arity, origin))
        if first[0] != atom.arity:
            where = f" (first used at {first[1]})" if first[1] is not None else ""
            raise ArityMismatchError(
                f"predicate {atom.predicate!r} used with arity "
                f"{atom.arity}, but arity {first[0]} elsewhere{where}: {rule}"
            )
    return arities


def parse_query(
    text: str,
    *,
    require_safe: bool = False,
    consistent_arities: bool = False,
) -> ConjunctiveQuery:
    """Parse a conjunctive-query rule such as ``q(X) :- e(X, X)``.

    With ``require_safe=True`` an unsafe head (a distinguished variable
    missing from the body) raises
    :class:`~repro.errors.UnsafeQueryError`; with
    ``consistent_arities=True`` a predicate used with two different
    arities raises :class:`~repro.errors.ArityMismatchError`.  Both
    default off: several analyses (e.g. rewriting certification)
    deliberately construct unsafe or overloaded queries to reason about
    them.  :func:`parse_program` enforces both by default for whole
    programs, where they are genuine consistency properties.
    """
    rule = _Parser(text).parse_rule()
    if consistent_arities:
        check_arities(rule)
    if require_safe and not rule.is_safe():
        missing = rule.distinguished_variables() - rule.body_variables()
        names = ", ".join(sorted(v.name for v in missing))
        raise UnsafeQueryError(
            f"unsafe query: head variables {{{names}}} do not occur in "
            f"the body of {rule}"
        )
    return rule


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``v1(M, a, C)``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    parser._expect("eof")
    return atom


def parse_program(
    text: str,
    *,
    require_safe: bool = False,
    consistent_arities: bool = True,
) -> list[ConjunctiveQuery]:
    """Parse one rule per non-empty, non-comment (``#``/``%``) line.

    Errors are re-raised with the 1-based source line number prefixed,
    keeping their precise type.  Arity consistency is enforced across
    the whole program by default — a predicate must be used with one
    arity everywhere (:class:`~repro.errors.ArityMismatchError`).
    """
    rules = []
    arities: dict[str, tuple[int, object]] | None = {} if consistent_arities else None
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "%")):
            continue
        try:
            rule = parse_query(stripped, require_safe=require_safe)
            if arities is not None:
                check_arities(rule, arities, origin=f"line {number}")
        except ParseError as error:
            message = str(error)
            prefixed = (
                message
                if message.startswith(f"line {number}:")
                else f"line {number}: {message}"
            )
            raise type(error)(prefixed) from None
        rules.append(rule)
    return rules
