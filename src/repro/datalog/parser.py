"""A small parser for the datalog-style syntax used throughout the paper.

Grammar (informal)::

    rule      :=  atom ":-" literal ("," literal)*
    literal   :=  atom | term CMP term
    atom      :=  IDENT "(" term ("," term)* ")"  |  IDENT "(" ")"
    term      :=  VARIABLE | CONSTANT
    CMP       :=  "<=" | ">=" | "!=" | "<" | ">" | "="

Following the paper's convention (Section 2.1), identifiers beginning with
an upper-case letter are variables and identifiers beginning with a
lower-case letter or a digit are constants.  Quoted strings and bare
integers are constants.  ``_`` denotes a fresh anonymous variable.

Errors carry source positions both in the message and as a structured
:class:`~repro.errors.SourceSpan` in ``error.span`` (never ``None`` for
errors raised here), and are drawn from the shared taxonomy in
:mod:`repro.errors`: plain syntax problems raise :class:`ParseError`
(still importable here under its historical name ``DatalogSyntaxError``),
a predicate used with two different arities raises
:class:`~repro.errors.ArityMismatchError`, and — when safety is
requested — an unsafe head raises
:class:`~repro.errors.UnsafeQueryError`.

The ``*_spans`` entry points additionally return a :class:`SourceMap`
recording the span of every parsed atom and rule, which is what the
:mod:`repro.analysis` lint engine uses to point diagnostics at source.
Spans are keyed by object identity (like
:class:`~repro.datalog.interning.InternTable`'s fast path) with the atoms
kept alive by the map, so later structural interning of the parsed
objects never invalidates a recorded span.

Example::

    >>> parse_query("q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)")
    ConjunctiveQuery(q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C))
"""

from __future__ import annotations

import itertools
import re
from typing import Iterator

from ..errors import ArityMismatchError, ParseError, SourceSpan, UnsafeQueryError
from .atoms import COMPARISON_PREDICATES, Atom
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable

#: Historical name: the parser predates the shared error taxonomy.  An
#: alias (not a subclass) so ``except DatalogSyntaxError`` keeps catching
#: every parse-level failure, including the refined arity/safety errors.
DatalogSyntaxError = ParseError


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>:-)
  | (?P<cmp><=|>=|!=|<|>|=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


class SourceMap:
    """Spans of the atoms and rules produced by one parse.

    Lookup is by object *identity* — structurally equal atoms from
    different source positions keep distinct spans, and the map holds a
    strong reference to every recorded object so an ``id()`` can never be
    reused while the map is alive.  This is the same discipline as
    :class:`~repro.datalog.interning.InternTable`, which is why spans
    survive interning: interning maps objects to keys without ever
    replacing the parsed objects themselves.
    """

    __slots__ = ("text", "_spans", "_keepalive")

    def __init__(self, text: str = "") -> None:
        self.text = text
        self._spans: dict[int, SourceSpan] = {}
        self._keepalive: list[object] = []

    def record(self, obj: object, span: SourceSpan) -> None:
        """Record *span* for *obj* (an atom or a rule)."""
        self._spans[id(obj)] = span
        self._keepalive.append(obj)

    def span_for(self, obj: object) -> SourceSpan | None:
        """The recorded span of *obj*, or ``None`` when unknown."""
        return self._spans.get(id(obj))

    def merge(self, other: "SourceMap") -> None:
        """Fold every recording of *other* into this map."""
        self._spans.update(other._spans)
        self._keepalive.extend(other._keepalive)

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceMap({len(self._spans)} spans)"


def _position(text: str, offset: int) -> str:
    """Render *offset* as ``offset N (line L, column C)``."""
    return str(_span_at(text, offset, offset))


def _span_at(text: str, start: int, end: int) -> SourceSpan:
    """A :class:`SourceSpan` for ``[start, end)`` within *text*."""
    line = text.count("\n", 0, start) + 1
    column = start - (text.rfind("\n", 0, start) + 1) + 1
    return SourceSpan(start, end, line, column)


def _tokenize(text: str) -> Iterator[tuple[str, str, int]]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at "
                f"{_position(text, position)}",
                span=_span_at(text, position, position + 1),
            )
        start = position
        position = match.end()
        kind = match.lastgroup
        if kind != "ws":
            yield kind, match.group(), start
    yield "eof", "", len(text)


class _Parser:
    """Recursive-descent parser over one rule's text.

    ``base_offset``/``base_line`` shift every produced span, so
    :func:`parse_program` can parse line-by-line while reporting
    whole-program positions.
    """

    def __init__(
        self,
        text: str,
        *,
        base_offset: int = 0,
        base_line: int = 1,
        base_column: int = 1,
        source_map: SourceMap | None = None,
    ) -> None:
        self._text = text
        self._base_offset = base_offset
        self._base_line = base_line
        self._base_column = base_column
        self.source_map = source_map if source_map is not None else SourceMap(text)
        self._tokens = list(self._shifted_tokens(text))
        self._index = 0
        self._anon = itertools.count()

    def _shifted_tokens(self, text: str) -> Iterator[tuple[str, str, int]]:
        try:
            yield from _tokenize(text)
        except ParseError as error:
            raise self._shift_error(error) from None

    def _shift_error(self, error: ParseError) -> ParseError:
        if (
            self._base_offset == 0
            and self._base_line == 1
            and self._base_column == 1
        ):
            return error
        span = error.span
        shifted = self._shift_span(span) if span is not None else None
        return type(error)(str(error), span=shifted)

    # -- span helpers ----------------------------------------------------
    def _shift_span(self, local: SourceSpan) -> SourceSpan:
        """Translate a text-local span into whole-source coordinates.

        The column shift applies only to the parser text's first line:
        later local lines start at the source's own column 1.
        """
        span = local.shifted(
            offset=self._base_offset, lines=self._base_line - 1
        )
        if local.line == 1 and self._base_column != 1:
            span = SourceSpan(
                span.start, span.end, span.line,
                span.column + self._base_column - 1,
            )
        return span

    def _span(self, start: int, end: int) -> SourceSpan:
        return self._shift_span(_span_at(self._text, start, end))

    def _fail(self, message: str, start: int, end: int | None = None) -> ParseError:
        span = self._span(start, start + 1 if end is None else end)
        return ParseError(f"{message} at {_position(self._text, start)}", span=span)

    # -- token helpers ---------------------------------------------------
    def _peek(self) -> tuple[str, str, int]:
        return self._tokens[self._index]

    def _advance(self) -> tuple[str, str, int]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> str:
        actual_kind, value, offset = self._advance()
        if actual_kind != kind:
            shown = value if actual_kind != "eof" else "end of input"
            raise self._fail(
                f"expected {kind}, got {shown!r}", offset, offset + max(len(value), 1)
            )
        return value

    def _offset(self) -> int:
        """Source offset of the next token (local to this rule's text)."""
        return self._peek()[2]

    def _end_offset(self) -> int:
        """End offset of the most recently consumed token."""
        if self._index == 0:
            return 0
        kind, value, offset = self._tokens[self._index - 1]
        return offset + len(value)

    # -- grammar -----------------------------------------------------------
    def parse_rule(self) -> ConjunctiveQuery:
        start = self._offset()
        head = self.parse_atom()
        self._expect("arrow")
        body = [self.parse_literal()]
        while self._peek()[0] == "comma":
            self._advance()
            body.append(self.parse_literal())
        end = self._end_offset()
        self._expect("eof")
        rule = ConjunctiveQuery(head, tuple(body))
        self.source_map.record(rule, self._span(start, end))
        return rule

    def parse_literal(self) -> Atom:
        # Either ``ident(...)`` or ``term CMP term``.
        kind, _value, _offset = self._peek()
        if kind == "ident" and self._tokens[self._index + 1][0] == "lparen":
            return self.parse_atom()
        start = self._offset()
        left = self.parse_term()
        operator_offset = self._offset()
        operator = self._expect("cmp")
        right = self.parse_term()
        end = self._end_offset()
        if operator not in COMPARISON_PREDICATES:
            raise self._fail(
                f"unknown comparison {operator!r}",
                operator_offset,
                operator_offset + len(operator),
            )
        atom = Atom(operator, (left, right))
        self.source_map.record(atom, self._span(start, end))
        return atom

    def parse_atom(self) -> Atom:
        start = self._offset()
        predicate = self._expect("ident")
        self._expect("lparen")
        args: list[Term] = []
        if self._peek()[0] != "rparen":
            args.append(self.parse_term())
            while self._peek()[0] == "comma":
                self._advance()
                args.append(self.parse_term())
        self._expect("rparen")
        atom = Atom(predicate, tuple(args))
        self.source_map.record(atom, self._span(start, self._end_offset()))
        return atom

    def parse_term(self) -> Term:
        kind, value, offset = self._advance()
        if kind == "string":
            return Constant(value[1:-1])
        if kind == "number":
            return Constant(float(value) if "." in value else int(value))
        if kind == "ident":
            if value == "_":
                return Variable(f"_Anon{next(self._anon)}")
            if value[0].isupper():
                return Variable(value)
            return Constant(value)
        shown = value if kind != "eof" else "end of input"
        raise self._fail(
            f"expected a term, got {shown!r}", offset, offset + max(len(value), 1)
        )


def check_arities(
    rule: ConjunctiveQuery,
    known: dict[str, tuple[int, object]] | None = None,
    *,
    origin: object = None,
    source_map: SourceMap | None = None,
) -> dict[str, tuple[int, object]]:
    """Reject a predicate used with two different arities.

    Comparison atoms are excluded: their "predicates" are operators with
    a fixed arity of two.  Pass the returned mapping back in to extend
    the check across rules; *origin* labels where each arity was first
    seen (e.g. a line number) for the error message.  With a
    *source_map*, the raised error's ``span`` points at the offending
    atom (falling back to the rule's span).
    """
    arities = known if known is not None else {}
    for atom in (rule.head, *rule.body):
        if atom.is_comparison:
            continue
        first = arities.setdefault(atom.predicate, (atom.arity, origin))
        if first[0] != atom.arity:
            where = f" (first used at {first[1]})" if first[1] is not None else ""
            span = None
            if source_map is not None:
                span = source_map.span_for(atom) or source_map.span_for(rule)
            raise ArityMismatchError(
                f"predicate {atom.predicate!r} used with arity "
                f"{atom.arity}, but arity {first[0]} elsewhere{where}: {rule}",
                span=span,
            )
    return arities


def _check_safe(rule: ConjunctiveQuery, source_map: SourceMap) -> None:
    """Raise a span-carrying :class:`UnsafeQueryError` when *rule* is unsafe."""
    if rule.is_safe():
        return
    missing = rule.distinguished_variables() - rule.body_variables()
    names = ", ".join(sorted(v.name for v in missing))
    span = source_map.span_for(rule.head) or source_map.span_for(rule)
    raise UnsafeQueryError(
        f"unsafe query: head variables {{{names}}} do not occur in "
        f"the body of {rule}",
        span=span,
    )


def parse_query_spans(
    text: str,
    *,
    require_safe: bool = False,
    consistent_arities: bool = False,
    base_offset: int = 0,
    base_line: int = 1,
    base_column: int = 1,
) -> tuple[ConjunctiveQuery, SourceMap]:
    """:func:`parse_query`, additionally returning the rule's :class:`SourceMap`.

    Every error raised carries a non-``None`` ``span``; ``base_offset``,
    ``base_line`` and ``base_column`` shift all spans (used by
    :func:`parse_program_spans` to report whole-program positions for
    line-local parses).
    """
    parser = _Parser(
        text,
        base_offset=base_offset,
        base_line=base_line,
        base_column=base_column,
    )
    rule = parser.parse_rule()
    source_map = parser.source_map
    if consistent_arities:
        check_arities(rule, source_map=source_map)
    if require_safe:
        _check_safe(rule, source_map)
    return rule, source_map


def parse_query(
    text: str,
    *,
    require_safe: bool = False,
    consistent_arities: bool = False,
) -> ConjunctiveQuery:
    """Parse a conjunctive-query rule such as ``q(X) :- e(X, X)``.

    With ``require_safe=True`` an unsafe head (a distinguished variable
    missing from the body) raises
    :class:`~repro.errors.UnsafeQueryError`; with
    ``consistent_arities=True`` a predicate used with two different
    arities raises :class:`~repro.errors.ArityMismatchError`.  Both
    default off: several analyses (e.g. rewriting certification)
    deliberately construct unsafe or overloaded queries to reason about
    them.  :func:`parse_program` enforces both by default for whole
    programs, where they are genuine consistency properties.
    """
    rule, _ = parse_query_spans(
        text, require_safe=require_safe, consistent_arities=consistent_arities
    )
    return rule


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``v1(M, a, C)``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    parser._expect("eof")
    return atom


def parse_program_spans(
    text: str,
    *,
    require_safe: bool = False,
    consistent_arities: bool = True,
) -> tuple[list[ConjunctiveQuery], SourceMap]:
    """:func:`parse_program`, additionally returning one merged :class:`SourceMap`.

    Spans are global to *text* (offsets count from the program start and
    lines are 1-based program lines), so a diagnostic about rule 7 points
    into the original file.
    """
    rules: list[ConjunctiveQuery] = []
    combined = SourceMap(text)
    arities: dict[str, tuple[int, object]] | None = (
        {} if consistent_arities else None
    )
    offset = 0
    for number, line in enumerate(text.splitlines(), start=1):
        line_start = offset
        offset += len(line) + 1  # the splitlines-removed newline
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "%")):
            continue
        indent = line.find(stripped[0])
        try:
            rule, source_map = parse_query_spans(
                stripped,
                require_safe=require_safe,
                base_offset=line_start + indent,
                base_line=number,
                base_column=indent + 1,
            )
            if arities is not None:
                check_arities(
                    rule, arities, origin=f"line {number}", source_map=source_map
                )
        except ParseError as error:
            message = str(error)
            prefixed = (
                message
                if message.startswith(f"line {number}:")
                else f"line {number}: {message}"
            )
            raise type(error)(prefixed, span=error.span) from None
        rules.append(rule)
        combined.merge(source_map)
    return rules, combined


def parse_program(
    text: str,
    *,
    require_safe: bool = False,
    consistent_arities: bool = True,
) -> list[ConjunctiveQuery]:
    """Parse one rule per non-empty, non-comment (``#``/``%``) line.

    Errors are re-raised with the 1-based source line number prefixed,
    keeping their precise type and structured ``span``.  Arity
    consistency is enforced across the whole program by default — a
    predicate must be used with one arity everywhere
    (:class:`~repro.errors.ArityMismatchError`).
    """
    rules, _ = parse_program_spans(
        text, require_safe=require_safe, consistent_arities=consistent_arities
    )
    return rules
