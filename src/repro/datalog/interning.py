"""Structural interning of atoms and queries.

The planner pipeline (:mod:`repro.planner`) memoizes expensive results —
homomorphism existence, containment, minimization, canonical databases,
tuple-cores — across stages.  Those caches need *cheap, stable* keys for
atoms and queries.  This module provides an :class:`InternTable` that maps
structurally-equal atoms and queries to small integers:

* the first time an atom or query is seen its structure is hashed once and
  a fresh integer key is allocated;
* later lookups of the *same object* hit an identity fast path and never
  re-hash the structure;
* lookups of a *structurally equal but distinct* object resolve to the
  same key, which is what makes cross-stage and cross-candidate caching
  effective (e.g. 500 random views frequently contain only ~250 distinct
  definitions — see the Figure 6/7 workloads).

Keys are only meaningful within one table (one
:class:`~repro.planner.context.PlannerContext`); they are never
serialized.  Interning is purely syntactic: two queries equal up to
variable *renaming* get different keys, which is always sound (a cache
miss, never a wrong hit).
"""

from __future__ import annotations

from itertools import count
from typing import Hashable, Iterable, Sequence

from .atoms import Atom
from .query import ConjunctiveQuery

__all__ = ["InternTable"]


class InternTable:
    """Maps structurally-equal atoms/queries to small integer keys.

    The table keeps a strong reference to every object it has interned so
    the ``id()``-based fast path can never be fooled by address reuse.
    Tables are intended to live as long as one planning session.
    """

    __slots__ = (
        "_counter",
        "_atom_keys",
        "_atom_by_identity",
        "_query_structs",
        "_query_by_identity",
        "_keepalive",
    )

    def __init__(self) -> None:
        self._counter = count()
        self._atom_keys: dict[Atom, int] = {}
        self._atom_by_identity: dict[int, int] = {}
        self._query_structs: dict[tuple, int] = {}
        self._query_by_identity: dict[int, int] = {}
        self._keepalive: list[object] = []

    # -- atoms ---------------------------------------------------------------
    def atom_key(self, atom: Atom) -> int:
        """The interned key of *atom* (equal atoms share a key)."""
        key = self._atom_by_identity.get(id(atom))
        if key is not None:
            return key
        key = self._atom_keys.get(atom)
        if key is None:
            key = next(self._counter)
            self._atom_keys[atom] = key
        self._atom_by_identity[id(atom)] = key
        self._keepalive.append(atom)
        return key

    def atoms_key(self, atoms: Sequence[Atom] | Iterable[Atom]) -> tuple[int, ...]:
        """A composite key for an ordered collection of atoms."""
        return tuple(self.atom_key(atom) for atom in atoms)

    # -- queries -------------------------------------------------------------
    def query_key(self, query: ConjunctiveQuery) -> int:
        """The interned key of *query* (structurally equal queries share it)."""
        key = self._query_by_identity.get(id(query))
        if key is not None:
            return key
        struct = (self.atom_key(query.head), self.atoms_key(query.body))
        key = self._query_structs.get(struct)
        if key is None:
            key = next(self._counter)
            self._query_structs[struct] = key
        self._query_by_identity[id(query)] = key
        self._keepalive.append(query)
        return key

    # -- ad-hoc composite keys ----------------------------------------------
    def composite_key(self, *parts: Hashable) -> tuple[Hashable, ...]:
        """Combine already-interned keys (or other hashables) into one key."""
        return parts

    # -- introspection -------------------------------------------------------
    @property
    def distinct_atoms(self) -> int:
        """Number of distinct atom structures interned so far."""
        return len(self._atom_keys)

    @property
    def distinct_queries(self) -> int:
        """Number of distinct query structures interned so far."""
        return len(self._query_structs)

    def __len__(self) -> int:
        return self.distinct_atoms + self.distinct_queries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InternTable(atoms={self.distinct_atoms}, "
            f"queries={self.distinct_queries})"
        )
