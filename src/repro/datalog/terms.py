"""Terms of the datalog fragment: variables and constants.

The paper works with conjunctive queries whose arguments are either
variables or constants (Section 2.1).  Following the paper's notation,
variable names conventionally begin with an upper-case letter and constants
with a lower-case letter, but the classes below are explicit and never guess
a term's kind from its spelling; only the parser applies that convention.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, TypeGuard, Union


@dataclass(frozen=True, slots=True)
class Variable:
    """A logical variable, identified by its name.

    Two variables with the same name are the same variable within a single
    query; queries are implicitly standardized apart by :func:`fresh_variables`
    when combined.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant value.  Any hashable Python value may be used."""

    value: object

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


#: A term is either a variable or a constant.
Term = Union[Variable, Constant]


def is_variable(term: Term) -> TypeGuard[Variable]:
    """Return ``True`` if *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> TypeGuard[Constant]:
    """Return ``True`` if *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


class FreshVariableFactory:
    """Produces variables guaranteed not to collide with a set of used names.

    The factory is used when standardizing queries apart, when expanding
    views (existential variables become fresh variables, Definition 2.2),
    and by the Section 6.2 renaming heuristic.
    """

    def __init__(self, used_names: Iterable[str] = ()) -> None:
        self._used = set(used_names)
        self._counter = itertools.count()

    def reserve(self, names: Iterable[str]) -> None:
        """Mark *names* as used so they are never produced."""
        self._used.update(names)

    def fresh(self, base: str = "F") -> Variable:
        """Return a new variable whose name starts with *base*."""
        while True:
            candidate = f"{base}_{next(self._counter)}"
            if candidate not in self._used:
                self._used.add(candidate)
                return Variable(candidate)

    def fresh_like(self, variable: Variable) -> Variable:
        """Return a fresh variable whose name is derived from *variable*."""
        return self.fresh(variable.name)

    def stream(self, base: str = "F") -> Iterator[Variable]:
        """Yield an endless stream of fresh variables."""
        while True:
            yield self.fresh(base)
