"""Terms of the datalog fragment: variables and constants.

The paper works with conjunctive queries whose arguments are either
variables or constants (Section 2.1).  Following the paper's notation,
variable names conventionally begin with an upper-case letter and constants
with a lower-case letter, but the classes below are explicit and never guess
a term's kind from its spelling; only the parser applies that convention.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, TypeGuard, Union


@dataclass(frozen=True, slots=True)
class Variable:
    """A logical variable, identified by its name.

    Two variables with the same name are the same variable within a single
    query; queries are implicitly standardized apart by :func:`fresh_variables`
    when combined.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __reduce__(self):
        # Re-intern on unpickle so identity-based fast paths (InternTable,
        # shared-substitution checks) hold in the receiving process too.
        return (interned_variable, (self.name,))


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant value.  Any hashable Python value may be used."""

    value: object

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __reduce__(self):
        return (interned_constant, (self.value,))


#: A term is either a variable or a constant.
Term = Union[Variable, Constant]

#: Soft cap on each intern pool — beyond it terms are returned uninterned
#: rather than growing the pool without bound in a long-lived worker.
_POOL_CAP = 1_000_000

#: Module-level intern pools backing ``__reduce__``.  Strong references by
#: design (mirroring InternTable's keepalive): frozen slots dataclasses
#: cannot be weakly referenced on Python 3.10.
_VARIABLE_POOL: dict[str, Variable] = {}
_CONSTANT_POOL: dict[object, Constant] = {}


def interned_variable(name: str) -> Variable:
    """The process-canonical :class:`Variable` named *name*.

    Unpickling routes through here, so two copies of one variable that
    cross a process boundary (or a pickle round trip) collapse back to a
    single object and identity-keyed caches stay hot.
    """
    variable = _VARIABLE_POOL.get(name)
    if variable is None:
        variable = Variable(name)
        if len(_VARIABLE_POOL) < _POOL_CAP:
            _VARIABLE_POOL[name] = variable
    return variable


def interned_constant(value: object) -> Constant:
    """The process-canonical :class:`Constant` wrapping *value*.

    Unhashable values (legal but unusual) fall back to a fresh object.
    """
    try:
        constant = _CONSTANT_POOL.get(value)
    except TypeError:
        return Constant(value)
    if constant is None:
        constant = Constant(value)
        if len(_CONSTANT_POOL) < _POOL_CAP:
            _CONSTANT_POOL[value] = constant
    return constant


def clear_interned_terms() -> None:
    """Drop the term intern pools (tests and pool-lifetime management)."""
    _VARIABLE_POOL.clear()
    _CONSTANT_POOL.clear()


def is_variable(term: Term) -> TypeGuard[Variable]:
    """Return ``True`` if *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> TypeGuard[Constant]:
    """Return ``True`` if *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


class FreshVariableFactory:
    """Produces variables guaranteed not to collide with a set of used names.

    The factory is used when standardizing queries apart, when expanding
    views (existential variables become fresh variables, Definition 2.2),
    and by the Section 6.2 renaming heuristic.
    """

    def __init__(self, used_names: Iterable[str] = ()) -> None:
        self._used = set(used_names)
        self._counter = itertools.count()

    def reserve(self, names: Iterable[str]) -> None:
        """Mark *names* as used so they are never produced."""
        self._used.update(names)

    def fresh(self, base: str = "F") -> Variable:
        """Return a new variable whose name starts with *base*."""
        while True:
            candidate = f"{base}_{next(self._counter)}"
            if candidate not in self._used:
                self._used.add(candidate)
                return Variable(candidate)

    def fresh_like(self, variable: Variable) -> Variable:
        """Return a fresh variable whose name is derived from *variable*."""
        return self.fresh(variable.name)

    def stream(self, base: str = "F") -> Iterator[Variable]:
        """Yield an endless stream of fresh variables."""
        while True:
            yield self.fresh(base)
