"""Substitutions: finite mappings from variables to terms.

Substitutions implement the "mappings" of the paper: containment mappings
(Chandra-Merlin), the head unification used to seed them, the thawing map
of canonical databases, and the variable renamings of Sections 3.3 and 6.2.

A substitution maps variables to terms; constants are always mapped to
themselves (Section 2.1: a containment mapping "maps each constant to the
same constant").
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from .atoms import Atom
from .terms import Term, Variable, is_variable


class Substitution(Mapping[Variable, Term]):
    """An immutable mapping from variables to terms.

    Variables not present in the mapping are left unchanged by
    :meth:`apply_term`, so every substitution is total on terms.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[Variable, Term] | Iterable[tuple[Variable, Term]] = ()) -> None:
        self._mapping: dict[Variable, Term] = dict(mapping)
        for key in self._mapping:
            if not is_variable(key):
                raise TypeError(f"substitution keys must be variables, got {key!r}")

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, key: Variable) -> Term:
        return self._mapping[key]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._mapping == other._mapping
        if isinstance(other, Mapping):
            return self._mapping == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        entries = ", ".join(f"{k} -> {v}" for k, v in sorted(self._mapping.items(), key=lambda kv: kv[0].name))
        return f"Substitution({{{entries}}})"

    def __reduce__(self):
        # Slots classes need an explicit reduce; rebuilding from the item
        # pairs re-interns every key and value term on unpickle.
        return (Substitution, (tuple(self._mapping.items()),))

    # -- application -------------------------------------------------------
    def apply_term(self, term: Term) -> Term:
        """Apply the substitution to a single term."""
        if is_variable(term):
            return self._mapping.get(term, term)
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply the substitution to every argument of *atom*."""
        return Atom(atom.predicate, tuple(self.apply_term(arg) for arg in atom.args))

    def apply_atoms(self, atoms: Iterable[Atom]) -> tuple[Atom, ...]:
        """Apply the substitution to a sequence of atoms."""
        return tuple(self.apply_atom(atom) for atom in atoms)

    # -- construction ------------------------------------------------------
    def extended(self, variable: Variable, term: Term) -> Optional["Substitution"]:
        """Return a new substitution with ``variable -> term`` added.

        Returns ``None`` when the binding conflicts with an existing one
        (the key is already bound to a different term).
        """
        bound = self._mapping.get(variable)
        if bound is not None:
            return self if bound == term else None
        new_mapping = dict(self._mapping)
        new_mapping[variable] = term
        return Substitution(new_mapping)

    def merged(self, other: "Substitution") -> Optional["Substitution"]:
        """Union of two substitutions, or ``None`` on conflicting bindings."""
        result: "Substitution" = self
        for variable, term in other.items():
            extended = result.extended(variable, term)
            if extended is None:
                return None
            result = extended
        return result

    def compose(self, then: "Substitution") -> "Substitution":
        """Return the substitution equivalent to applying *self* then *then*."""
        mapping: dict[Variable, Term] = {
            var: then.apply_term(term) for var, term in self._mapping.items()
        }
        for var, term in then.items():
            mapping.setdefault(var, term)
        return Substitution(mapping)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Keep only the bindings for *variables*."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._mapping.items() if v in keep})

    def is_injective_on(self, variables: Iterable[Variable]) -> bool:
        """Whether distinct *variables* are mapped to distinct terms."""
        images = [self.apply_term(v) for v in set(variables)]
        return len(images) == len(set(images))

    def as_dict(self) -> dict[Variable, Term]:
        """A mutable copy of the underlying mapping."""
        return dict(self._mapping)


#: The identity substitution (leaves every term unchanged).
IDENTITY = Substitution()
