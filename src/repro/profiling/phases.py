"""Monotonic phase timers and the canonical phase taxonomy.

The planner already accumulates wall time per raw *stage* on its
:class:`~repro.planner.context.PlannerContext` (``ctx.stage(...)``); this
module maps those stage names onto a small, stable **phase taxonomy** —

    parse -> preflight -> minimize -> grouping -> canonical_db ->
    view_tuples -> tuple_cores -> set_cover -> cost_ranking

— that survives backend renames and is what ``repro plan --profile``,
``repro batch --profile`` outcome lines, ``CoreCoverStats.phase_seconds``
and ``BENCH_corecover.json`` report.

Stage-name mapping rules:

* pipeline stages map one-to-one (``cover`` -> ``set_cover``);
* every ``cost:<model>`` stage folds into ``cost_ranking``;
* ``rewrite:<backend>`` is the *envelope* around the per-phase stages and
  is dropped — counting it would double-book every phase inside it;
* ``parse`` never appears as a context stage (parsing happens before a
  context exists) and is supplied by the caller as ``parse_seconds``.

Timers use an injectable monotonic clock (``time.perf_counter`` by
default) so tests drive them deterministically.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

__all__ = [
    "CANONICAL_PHASES",
    "PhaseProfile",
    "PhaseProfiler",
    "phase_for_stage",
    "profile_from_stages",
]

#: The canonical pipeline phases, in execution order.
CANONICAL_PHASES: tuple[str, ...] = (
    "parse",
    "preflight",
    "minimize",
    "grouping",
    "canonical_db",
    "view_tuples",
    "tuple_cores",
    "set_cover",
    "cost_ranking",
)

#: Raw context stage name -> canonical phase (exact matches).
_STAGE_TO_PHASE: dict[str, str] = {
    "preflight": "preflight",
    # Acyclicity routing is a pre-backend decision; it books under the
    # preflight phase rather than growing the taxonomy.
    "routing": "preflight",
    "minimize": "minimize",
    "grouping": "grouping",
    "canonical_db": "canonical_db",
    "view_tuples": "view_tuples",
    "tuple_cores": "tuple_cores",
    "cover": "set_cover",
}


def phase_for_stage(stage: str) -> str | None:
    """The canonical phase a raw stage belongs to, or ``None`` to drop it."""
    mapped = _STAGE_TO_PHASE.get(stage)
    if mapped is not None:
        return mapped
    if stage.startswith("cost:"):
        return "cost_ranking"
    # "rewrite:<backend>" (and anything unrecognised) is an envelope, not
    # a phase of its own.
    return None


@dataclass(frozen=True)
class PhaseProfile:
    """Seconds per canonical phase, always in taxonomy order.

    Every canonical phase is present (zero when it did not run), so
    consumers — the CLI table, batch JSON, the bench dump — see a stable
    shape regardless of which backend produced the numbers.
    """

    phases: tuple[tuple[str, float], ...]

    @property
    def total_seconds(self) -> float:
        """Total profiled time across all phases."""
        return sum(seconds for _, seconds in self.phases)

    def seconds(self, phase: str) -> float:
        """Seconds spent in *phase* (0.0 when it did not run)."""
        return dict(self.phases).get(phase, 0.0)

    def fractions(self) -> dict[str, float]:
        """Each phase's share of the total (all zero for an empty profile)."""
        total = self.total_seconds
        if total <= 0.0:
            return {name: 0.0 for name, _ in self.phases}
        return {name: seconds / total for name, seconds in self.phases}

    def merged(self, other: "PhaseProfile") -> "PhaseProfile":
        """Phase-wise sum of two profiles (aggregation across requests)."""
        mine = dict(self.phases)
        theirs = dict(other.phases)
        return PhaseProfile(
            tuple(
                (name, mine.get(name, 0.0) + theirs.get(name, 0.0))
                for name in CANONICAL_PHASES
            )
        )

    def to_json(self) -> dict:
        """The JSON object attached to ``--profile`` outcome lines."""
        return {
            "phase_seconds": {
                name: round(seconds, 6) for name, seconds in self.phases
            },
            "total_seconds": round(self.total_seconds, 6),
            "fractions": {
                name: round(fraction, 4)
                for name, fraction in self.fractions().items()
            },
        }

    def render_text(self) -> str:
        """An aligned human-readable table (``repro plan --profile``)."""
        total = self.total_seconds
        lines = [f"phase profile (total {total * 1000:.1f} ms):"]
        fractions = self.fractions()
        for name, seconds in self.phases:
            lines.append(
                f"    {name:<12} {seconds * 1000:>9.2f} ms"
                f"  {fractions[name]:>6.1%}"
            )
        return "\n".join(lines)


class PhaseProfiler:
    """Accumulates monotonic wall time per canonical phase."""

    def __init__(
        self, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self._clock = clock
        self._seconds: dict[str, float] = {}

    def record(self, phase: str, seconds: float) -> None:
        """Add *seconds* to *phase* (which must be canonical)."""
        if phase not in CANONICAL_PHASES:
            raise ValueError(
                f"unknown phase {phase!r}; known: "
                f"{', '.join(CANONICAL_PHASES)}"
            )
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the block under canonical phase *name*."""
        if name not in CANONICAL_PHASES:
            raise ValueError(
                f"unknown phase {name!r}; known: "
                f"{', '.join(CANONICAL_PHASES)}"
            )
        started = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - started
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    def snapshot(self) -> PhaseProfile:
        """An immutable profile of everything recorded so far."""
        return PhaseProfile(
            tuple(
                (name, self._seconds.get(name, 0.0))
                for name in CANONICAL_PHASES
            )
        )


def profile_from_stages(
    stages: Iterable[tuple[str, float]],
    *,
    parse_seconds: float = 0.0,
) -> PhaseProfile:
    """Fold raw ``(stage, seconds)`` pairs into a :class:`PhaseProfile`.

    *stages* is typically ``PlannerStats.stages`` (a per-run delta);
    *parse_seconds* supplies the pre-context parse phase.
    """
    profiler = PhaseProfiler()
    if parse_seconds:
        profiler.record("parse", parse_seconds)
    for stage, seconds in stages:
        phase = phase_for_stage(stage)
        if phase is not None:
            profiler.record(phase, seconds)
    return profiler.snapshot()
