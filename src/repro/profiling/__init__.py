"""Phase-level profiling for the planning pipeline.

See :mod:`repro.profiling.phases` for the canonical phase taxonomy and
how raw :class:`~repro.planner.context.PlannerContext` stage timings map
onto it.
"""

from .phases import (
    CANONICAL_PHASES,
    PhaseProfile,
    PhaseProfiler,
    phase_for_stage,
    profile_from_stages,
)

__all__ = [
    "CANONICAL_PHASES",
    "PhaseProfile",
    "PhaseProfiler",
    "phase_for_stage",
    "profile_from_stages",
]
